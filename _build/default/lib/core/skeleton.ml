module Graph = Graphlib.Graph
module Edge_set = Graphlib.Edge_set

type snapshot = {
  call : Plan.call;
  clusters_before : int;
  alive_before : int;
  alive_after : int;
  spanner_size : int;
  assignment : int array;
}

type result = {
  spanner : Edge_set.t;
  plan : Plan.t;
  aborts : int;
  snapshots : snapshot list;
}

type state = {
  g : Graph.t;
  sampling : Sampling.t;
  cv : int array;  (** original vertex -> contracted vertex, -1 once dead *)
  mutable ncv : int;
  mutable center : int array;  (** contracted vertex -> original center *)
  mutable alive : bool array;  (** per contracted vertex *)
  mutable cluster : int array;
      (** contracted vertex -> cluster id; a cluster id is the
          contracted id of the vertex that founded it this round *)
  spanner : Edge_set.t;
  mutable aborts : int;
}

let init g sampling =
  let n = Graph.n g in
  {
    g;
    sampling;
    cv = Array.init n (fun v -> v);
    ncv = n;
    center = Array.init n (fun v -> v);
    alive = Array.make n true;
    cluster = Array.init n (fun v -> v);
    spanner = Edge_set.create g;
    aborts = 0;
  }

let sampled st ~cluster_id ~call =
  Sampling.sampled st.sampling ~center:st.center.(cluster_id) ~call

(* Cluster adjacency of every live contracted vertex: one (cluster,
   edge) entry per original edge crossing between different clusters. *)
let crossing_adjacency st =
  let adj = Array.make st.ncv [] in
  Graph.iter_edges st.g (fun e a b ->
      let u = st.cv.(a) and v = st.cv.(b) in
      if u >= 0 && v >= 0 && u <> v && st.alive.(u) && st.alive.(v) then begin
        let cu = st.cluster.(u) and cv' = st.cluster.(v) in
        if cu <> cv' then begin
          adj.(u) <- (cv', e) :: adj.(u);
          adj.(v) <- (cu, e) :: adj.(v)
        end
      end);
  adj

(* Deduplicate a (cluster, edge) incidence list, keeping the minimum
   edge identifier per cluster — the representative-edge rule shared
   with the distributed implementation. *)
let dedupe incidences =
  let best : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (c, e) ->
      match Hashtbl.find_opt best c with
      | Some e' when e' <= e -> ()
      | _ -> Hashtbl.replace best c e)
    incidences;
  best

let expand st (call : Plan.call) =
  let k = call.Plan.index in
  let adj = crossing_adjacency st in
  let new_cluster = Array.copy st.cluster in
  let deaths = ref [] in
  for u = 0 to st.ncv - 1 do
    if st.alive.(u) then begin
      let c0 = st.cluster.(u) in
      if not (sampled st ~cluster_id:c0 ~call:k) then begin
        let best = dedupe adj.(u) in
        (* Choose the sampled adjacent cluster reachable over the
           smallest representative edge. *)
        let join =
          Hashtbl.fold
            (fun c e acc ->
              if sampled st ~cluster_id:c ~call:k then
                match acc with
                | Some (_, e') when e' <= e -> acc
                | _ -> Some (c, e)
              else acc)
            best None
        in
        match join with
        | Some (c, e) ->
            Edge_set.add st.spanner e;
            new_cluster.(u) <- c
        | None ->
            let q = Hashtbl.length best in
            if q > call.Plan.abort_q then begin
              st.aborts <- st.aborts + 1;
              List.iter (fun (_, e) -> Edge_set.add st.spanner e) adj.(u)
            end
            else Hashtbl.iter (fun _ e -> Edge_set.add st.spanner e) best;
            deaths := u :: !deaths
      end
    end
  done;
  List.iter (fun u -> st.alive.(u) <- false) !deaths;
  st.cluster <- new_cluster

let contract st =
  (* Surviving clusters become the vertices of the next round's graph;
     new ids follow increasing old cluster id for determinism. *)
  let newid : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let centers = ref [] in
  let k = ref 0 in
  for u = 0 to st.ncv - 1 do
    (* Cluster ids are founders' contracted ids, so scanning u in
       increasing order visits clusters in increasing id order. *)
    if st.alive.(u) then begin
      let c = st.cluster.(u) in
      if not (Hashtbl.mem newid c) then begin
        Hashtbl.add newid c !k;
        centers := st.center.(c) :: !centers;
        incr k
      end
    end
  done;
  let ncv = !k in
  let center = Array.make (Stdlib.max 1 ncv) (-1) in
  List.iteri (fun i c -> center.(ncv - 1 - i) <- c) !centers;
  let n = Graph.n st.g in
  for a = 0 to n - 1 do
    let u = st.cv.(a) in
    if u >= 0 then
      if st.alive.(u) then st.cv.(a) <- Hashtbl.find newid st.cluster.(u)
      else st.cv.(a) <- -1
  done;
  st.ncv <- ncv;
  st.center <- center;
  st.alive <- Array.make (Stdlib.max 1 ncv) true;
  st.cluster <- Array.init (Stdlib.max 1 ncv) (fun i -> i)

let count_clusters st =
  let seen = Hashtbl.create 64 in
  for u = 0 to st.ncv - 1 do
    if st.alive.(u) then Hashtbl.replace seen st.cluster.(u) ()
  done;
  Hashtbl.length seen

let count_alive st =
  let c = ref 0 in
  for u = 0 to st.ncv - 1 do
    if st.alive.(u) then incr c
  done;
  !c

let assignment st =
  Array.map
    (fun u ->
      if u >= 0 && st.alive.(u) then st.center.(st.cluster.(u)) else -1)
    st.cv

let build_with ?(trace = false) ~plan ~sampling g =
  let st = init g sampling in
  let snapshots = ref [] in
  let current_round = ref 0 in
  Array.iter
    (fun (call : Plan.call) ->
      if call.Plan.round > !current_round then begin
        contract st;
        current_round := call.Plan.round
      end;
      let clusters_before = count_clusters st in
      let alive_before = count_alive st in
      expand st call;
      if trace then
        snapshots :=
          {
            call;
            clusters_before;
            alive_before;
            alive_after = count_alive st;
            spanner_size = Edge_set.cardinal st.spanner;
            assignment = assignment st;
          }
          :: !snapshots)
    plan.Plan.calls;
  {
    spanner = st.spanner;
    plan;
    aborts = st.aborts;
    snapshots = List.rev !snapshots;
  }

let build ?(d = 4) ?(eps = 0.5) ?(trace = false) ~seed g =
  let plan = Plan.make ~n:(Graph.n g) ~d ~eps () in
  let rng = Util.Prng.create ~seed in
  let sampling = Sampling.draw rng ~n:(Graph.n g) plan in
  build_with ~trace ~plan ~sampling g
