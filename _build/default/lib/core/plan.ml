type phase = Tower | Amplify | Final | Kill

type call = {
  index : int;
  round : int;
  iter : int;
  p : float;
  density_after : float;
  abort_q : int;
  phase : phase;
}

type t = {
  n : int;
  d : int;
  eps : float;
  word_budget : int;
  calls : call array;
  num_rounds : int;
}

let abort_threshold ~n ~p =
  if p <= 0. then max_int
  else
    let raw = 4. /. p *. log (float_of_int (Stdlib.max 2 n)) in
    if raw >= float_of_int max_int then max_int
    else int_of_float (Float.ceil raw)

let make ~n ?(d = 4) ?(eps = 0.5) () =
  if d < 2 then invalid_arg "Plan.make: d must be >= 2";
  if eps <= 0. || eps > 1. then invalid_arg "Plan.make: eps must be in (0, 1]";
  if n < 0 then invalid_arg "Plan.make: negative n";
  let log_n = Stdlib.max 1. (Util.Tower.log2 (float_of_int (Stdlib.max 2 n))) in
  let w = log_n ** eps in
  let word_budget = Stdlib.max 1 (int_of_float (Float.round w)) in
  (* Probabilities below need 1/w < 1; clamp the amplification base. *)
  let w_eff = Stdlib.max 2. w in
  let threshold = w *. Util.Tower.log2 (Stdlib.max 2. w) in
  let threshold = Stdlib.max 1. threshold in
  let calls = ref [] in
  let index = ref 0 in
  let density = ref 1. in
  let push ~round ~iter ~p ~phase =
    density :=
      (if p > 0. then !density /. p
       else Stdlib.max !density (float_of_int (Stdlib.max 1 n)));
    calls :=
      {
        index = !index;
        round;
        iter;
        p;
        density_after = !density;
        abort_q = abort_threshold ~n ~p;
        phase;
      }
      :: !calls;
    incr index
  in
  (* Tower phase. *)
  let round = ref 0 in
  (try
     (* Round 0: a single call at probability 1/D. *)
     push ~round:0 ~iter:0 ~p:(1. /. float_of_int d) ~phase:Tower;
     if !density > threshold then raise Exit;
     let i = ref 1 in
     while true do
       incr round;
       let s = Util.Tower.s ~d !i in
       let p = 1. /. float_of_int s in
       let iterations = if s >= Util.Tower.cap then 1 else s + 1 in
       for j = 0 to iterations - 1 do
         if !density <= threshold then push ~round:!round ~iter:j ~p ~phase:Tower
       done;
       if !density > threshold then raise Exit;
       incr i
     done
   with Exit -> ());
  (* Amplify phase: push the nominal density to at least log n. *)
  let p_slow = 1. /. w_eff in
  if !density < log_n then begin
    incr round;
    let iter = ref 0 in
    while !density < log_n do
      push ~round:!round ~iter:!iter ~p:p_slow ~phase:Amplify;
      incr iter
    done
  end;
  (* Final phase: push the nominal density to n, then kill. *)
  incr round;
  let iter = ref 0 in
  while !density < float_of_int (Stdlib.max 1 n) do
    push ~round:!round ~iter:!iter ~p:p_slow ~phase:Final;
    incr iter
  done;
  push ~round:!round ~iter:!iter ~p:0. ~phase:Kill;
  let calls = Array.of_list (List.rev !calls) in
  { n; d; eps; word_budget; calls; num_rounds = !round + 1 }

let calls_in_round t r =
  Array.to_list (Array.of_seq (Seq.filter (fun c -> c.round = r) (Array.to_seq t.calls)))

let last_call t = t.calls.(Array.length t.calls - 1)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>plan n=%d D=%d eps=%.2f budget=%d words, %d calls in %d rounds@," t.n
    t.d t.eps t.word_budget (Array.length t.calls) t.num_rounds;
  Array.iter
    (fun c ->
      Format.fprintf ppf "  call %d: round %d iter %d p=%.4f density=%.1f %s@,"
        c.index c.round c.iter c.p c.density_after
        (match c.phase with
        | Tower -> "tower"
        | Amplify -> "amplify"
        | Final -> "final"
        | Kill -> "kill"))
    t.calls;
  Format.fprintf ppf "@]"
