let check_p p = if p <= 0. || p > 1. then invalid_arg "Contribution: p must be in (0,1]"

(* One step of the recurrence for a fixed q. *)
let step ~p ~xprev q =
  let qf = float_of_int q in
  let keep = (1. -. p) ** (qf +. 1.) in
  ((1. -. keep) *. xprev) +. (qf *. keep) +. ((1. -. p) *. (1. -. ((1. -. p) ** qf)))

let argmax_q ~p ~xprev =
  (* The continuous optimum is at q = -1/ln(1-p) + 1 + xprev; scan a
     window around it to find the integer maximum. *)
  let center =
    if p >= 1. then 1.
    else (-1. /. log (1. -. p)) +. 1. +. Stdlib.max 0. xprev
  in
  let lo = Stdlib.max 0 (int_of_float center - 4) in
  let hi = int_of_float center + 5 in
  let best = ref lo and best_val = ref (step ~p ~xprev lo) in
  for q = lo to hi do
    let v = step ~p ~xprev q in
    if v > !best_val then begin
      best := q;
      best_val := v
    end
  done;
  (* q = 0 is always a candidate too (vertex with no other clusters). *)
  if step ~p ~xprev 0 > !best_val then 0 else !best

let xtp_sequence ~p ~t =
  check_p p;
  if t < 0 then invalid_arg "Contribution.xtp_sequence: negative t";
  let xs = Array.make (t + 1) 0. in
  for i = 1 to t do
    let xprev = xs.(i - 1) in
    let q = argmax_q ~p ~xprev in
    xs.(i) <- step ~p ~xprev q
  done;
  xs

let xtp ~p ~t = (xtp_sequence ~p ~t).(t)

let paper_bound ~p ~t =
  check_p p;
  (1. /. p *. (log (float_of_int (t + 1)) -. Util.Tower.zeta)) +. float_of_int t
