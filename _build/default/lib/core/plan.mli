(** The call schedule of the skeleton algorithm (Section 2 and the
    proof of Theorem 2).

    The algorithm is a fixed sequence of calls to [Expand], grouped
    into rounds; between rounds the surviving clusters are contracted.
    The schedule depends only on [n], the density parameter [D], and
    the message-length exponent [eps] — never on the coin flips — so
    every node of a distributed network can compute it locally, which
    is what Theorem 2's implementation relies on.

    Phases, following the paper exactly:

    - {b Tower}: round 0 runs one call with probability [1/D]; round
      [i >= 1] runs [s_i + 1] calls with probability [1/s_i]
      ([s_i] from {!Util.Tower}).  A running {e nominal density}
      [d] (the expected value of n / #clusters) multiplies by [1/p]
      at each call.  The tower phase ends the first time
      [d > log^eps n * log(log^eps n)].
    - {b Amplify}: one round of calls at probability [(log n)^-eps]
      until the nominal density reaches [log n].
    - {b Final}: calls at probability [(log n)^-eps] until the nominal
      density reaches [n], the very last call having probability [0]
      (which kills every remaining vertex). *)

type phase = Tower | Amplify | Final | Kill

type call = {
  index : int;  (** position in the whole schedule, from 0 *)
  round : int;  (** round number; contraction happens between rounds *)
  iter : int;  (** iteration within the round, from 0 *)
  p : float;  (** sampling probability of this call *)
  density_after : float;  (** nominal density once the call completes *)
  abort_q : int;
      (** the paper's [4 s_i ln n] threshold: a dying vertex adjacent to
          more clusters than this aborts and keeps all incident edges *)
  phase : phase;
}

type t = {
  n : int;
  d : int;
  eps : float;
  word_budget : int;  (** [max 1 (round (log2 n)^eps)] — the message length *)
  calls : call array;
  num_rounds : int;
}

val make : n:int -> ?d:int -> ?eps:float -> unit -> t
(** [make ~n ()] builds the schedule.  [d] defaults to 4 (the paper
    needs [D >= 4]); [eps] defaults to [0.5].
    @raise Invalid_argument if [d < 2] or [eps] outside [(0, 1]]. *)

val calls_in_round : t -> int -> call list
val last_call : t -> call
(** Always has [p = 0.]. *)

val pp : Format.formatter -> t -> unit
