module Graph = Graphlib.Graph
module Edge_set = Graphlib.Edge_set

type result = {
  spanner : Edge_set.t;
  skeleton_size : int;
  fibonacci_size : int;
  params : Fib_params.t;
}

let build ?o ?eps ?ell ?d ~seed g =
  let n = Graph.n g in
  let d =
    match d with
    | Some d -> d
    | None ->
        let loglog = Util.Tower.log2 (Stdlib.max 2. (Util.Tower.log2 (float_of_int (Stdlib.max 4 n)))) in
        Stdlib.max 4 (int_of_float (Float.round loglog))
  in
  let fib = Fibonacci.build ?o ?eps ?ell ~seed g in
  let sk = Skeleton.build ~d ~seed:(seed + 1) g in
  let spanner = Edge_set.union fib.Fibonacci.spanner sk.Skeleton.spanner in
  {
    spanner;
    skeleton_size = Edge_set.cardinal sk.Skeleton.spanner;
    fibonacci_size = Edge_set.cardinal fib.Fibonacci.spanner;
    params = fib.Fibonacci.params;
  }
