(** Distributed construction of Fibonacci spanners (Section 4.4) on
    the {!Distnet.Sim} engine, message length capped at
    [O(n^(1/t))] words.

    Two stages per level [i]:

    + {b parents} — synchronized multi-source BFS from [V_i] out to
      radius [ell^(i-1)] (minimum-identifier tie-break); every reached
      vertex keeps its parent edge, realizing the [P(v, p_i v)]
      forest.  Unit-length messages, [ell^(i-1)] rounds.
    + {b balls} — every [V_i]-vertex floods its identity out to radius
      [ell^i].  A node asked to relay more than the word budget
      {e ceases participation} (the paper's Monte Carlo protocol);
      each cessation is followed by the Las Vegas detection flood: the
      blocked node broadcasts [(z, k)] to radius [ell^i], and any
      [V_{i-1}]-vertex [x] with [delta(x,z) + k < delta(x, V_{i+1})]
      declares failure and commands its [ell^i]-ball to keep all
      incident edges.  Finally each [V_{i-1}]-vertex traces the
      predecessor chains of its ball members, adding those shortest
      paths to the spanner (budget-batched, pipelined).

    Unlike the skeleton pair, the distributed spanner is not bit-for-bit
    equal to {!Fibonacci.build_with}: BFS parent ties and blocking can
    pick different (equally short) paths.  Tests compare structure and
    distortion, not edge identity. *)

type result = {
  spanner : Graphlib.Edge_set.t;
  params : Fib_params.t;
  levels : int array;
  stats : Distnet.Sim.stats;
  budget_words : int;  (** the [n^(1/t)] cap, in words *)
  blocked : int;  (** cessation events summed over levels *)
  failures : int;  (** Las Vegas detections (ball floods issued) *)
}

val build :
  ?o:int ->
  ?eps:float ->
  ?ell:int ->
  ?t:int ->
  seed:int ->
  Graphlib.Graph.t ->
  result
(** [t] (default 2) sets the message budget to [ceil (n^(1/t))] words. *)

val build_with :
  params:Fib_params.t ->
  levels:int array ->
  t:int ->
  Graphlib.Graph.t ->
  result
