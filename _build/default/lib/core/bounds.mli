(** Closed-form bounds from the paper's lemmas and theorems, shared by
    the test suite (which checks measured quantities against them) and
    the experiment tables (which print paper-vs-measured columns). *)

(** {1 Section 2 — skeleton} *)

val skeleton_size : n:int -> d:int -> float
(** Lemma 6's explicit expected-size expression:
    [n (D/e + 1 - 2/e + (1 + 1/D)(ln(D+2) - zeta + 1) + (ln D + 0.2)/D)]
    — the constant behind "[Dn/e + O(n log D)]". *)

val skeleton_distortion : n:int -> d:int -> eps:float -> float
(** Theorem 2's distortion bound
    [eps^-1 2^(log* n - log* D + 7) log_D n] (the explicit constant
    appearing at the end of the proof). *)

val skeleton_time : n:int -> d:int -> eps:float -> float
(** Theorem 2's round bound [O(t + log n)] with
    [t = eps^-1 2^(log* n - log* D) log_D n]; returned without the
    hidden constant. *)

(** {1 Section 4 — Fibonacci spanners} *)

val fib_c : ell:int -> int -> float
(** [fib_c ~ell i] — the closed-form bound on [C^i_ell] from Lemma 10:
    complete-segment length at level [i] with branching [ell].
    For [ell = 1]: [2^(i+1)]; [ell = 2]: [3 (i+1) 2^i];
    [ell >= 3]: [min (c_ell ell^i) (ell^i + 2 c'_ell i ell^(i-1))]. *)

val fib_i : ell:int -> int -> float
(** [fib_i ~ell i] — the closed-form bound on [I^i_ell] from Lemma 10:
    distance to a higher hilltop from an incomplete segment. *)

val fib_c_rec : ell:int -> int -> float
val fib_i_rec : ell:int -> int -> float
(** The exact recurrences of Lemma 9 (base cases
    [I^0 = C^0 = 1], [I^1 = ell + 1], [C^1 = ell + 2];
    [I^i = 2 I^(i-2) + I^(i-1) + ell^i + (ell-1) ell^(i-2)],
    [C^i = max (ell C^(i-1))
              ((ell-1) C^(i-1) + 2 (I^(i-2) + I^(i-1)) + ell^(i-1))]).
    The closed forms must dominate these; tests verify it. *)

val fib_size : n:int -> o:int -> ell:int -> float
(** Lemma 8: [o n + n^(1 + 1/(F_(o+3) - 1)) ell^phi]. *)

val fib_distortion_stage : o:int -> ell:int -> float
(** Theorem 7's multiplicative distortion for a pair at distance
    [ell^o]: [2^(o+1)] when [ell = 1], [3(o+1)] when [ell = 2],
    [3 + (6 ell - 2)/(ell (ell - 2))] when [ell >= 3]. *)

val fib_beta : n:int -> eps:float -> t:int -> float
(** The additive term at which a sparsest Fibonacci spanner becomes a
    [(1+eps)]-spanner (§1.2):
    [beta = (eps^-1 (log_phi log n + t)) ^ (log_phi log n + t)],
    with [t] the message-length exponent.  Returned as [log10 beta]
    would overflow less, but the raw value fits a float for feasible
    [n]; use {!log10_fib_beta} for display. *)

val ez_beta : n:int -> eps:float -> t:int -> float
(** Elkin–Zhang's sparsest [(1+eps,beta)]-spanner (§1.2):
    [beta = (eps^-1 t^2 log n log log n) ^ (t log log n)]. *)

val log10_fib_beta : n:int -> eps:float -> t:int -> float
val log10_ez_beta : n:int -> eps:float -> t:int -> float
(** [log10] of the above, computed in log space (no overflow). *)

(** {1 Section 3 — lower bounds} *)

val lb_additive_rounds : n:int -> delta:float -> beta:float -> float
(** Theorem 5: [Omega(sqrt (n^(1-delta) / beta))] rounds for an
    additive beta-spanner of size [n^(1+delta)]; the explicit choice
    [tau = sqrt (n^(1-delta) / (4 beta)) - 6] from the proof. *)

val lb_eps_beta : n:int -> delta:float -> zeta:float -> tau:int -> float
(** Theorem 4: the expected beta forced on a tau-round
    [(1 + 2(1-zeta)/(tau+2), beta)]-spanner:
    [zeta^2 n^(1-delta) / (4 (tau+6)^2) - 2]. *)

val lb_sublinear_rounds : n:int -> nu:float -> xi:float -> float
(** Theorem 6: [Omega(n^(nu (1 - xi) / (1 + nu)))] rounds for a
    [d + O(d^(1-nu))] spanner of size [n^(1+xi)]. *)
