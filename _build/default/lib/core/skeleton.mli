(** The paper's Section 2 algorithm (sequential executable model).

    The algorithm runs the {!Plan} schedule: a sequence of [Expand]
    calls grouped into rounds, contracting the surviving clusters
    between rounds.  Each call, per cluster-of-the-moment:

    - a vertex (of the current contracted graph) whose own cluster is
      sampled stays put and contributes no edge;
    - otherwise, if some adjacent cluster is sampled, it joins one
      (here: the one reachable over the smallest representative edge
      identifier — the paper allows any) and contributes that edge;
    - otherwise it {e dies}, contributing one representative edge to
      every adjacent cluster — or, when adjacent to more than
      [4 s_i ln n] clusters, aborting and keeping {e all} incident
      edges (the whp escape hatch of Theorem 2).

    Randomness comes exclusively from a {!Sampling} tape, so running
    with the same tape as {!Skeleton_dist} yields the identical
    spanner. *)

type snapshot = {
  call : Plan.call;
  clusters_before : int;  (** clusters entering the call *)
  alive_before : int;  (** live contracted vertices entering the call *)
  alive_after : int;
  spanner_size : int;  (** spanner edges selected so far *)
  assignment : int array;
      (** per original vertex: the original-vertex id of its cluster's
          center after the call, or [-1] if dead *)
}

type result = {
  spanner : Graphlib.Edge_set.t;
  plan : Plan.t;
  aborts : int;  (** times the [q > 4 s_i ln n] rule fired *)
  snapshots : snapshot list;  (** oldest first; empty unless [trace] *)
}

val build :
  ?d:int -> ?eps:float -> ?trace:bool -> seed:int -> Graphlib.Graph.t -> result
(** Run the full algorithm.  [d] (default 4) is the density parameter
    [D]; [eps] (default 0.5) the message-length exponent (which shapes
    the schedule even sequentially); [trace] (default false) records a
    {!snapshot} after every call. *)

val build_with :
  ?trace:bool ->
  plan:Plan.t ->
  sampling:Sampling.t ->
  Graphlib.Graph.t ->
  result
(** Run under an explicit schedule and random tape (the derandomized
    entry point used to cross-check the distributed implementation). *)
