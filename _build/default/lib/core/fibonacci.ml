module Graph = Graphlib.Graph
module Bfs = Graphlib.Bfs
module Edge_set = Graphlib.Edge_set

type level_stat = { members : int; ball_paths : int; max_ball : int }

type result = {
  spanner : Edge_set.t;
  params : Fib_params.t;
  levels : int array;
  per_level : level_stat array;
}

let members_of_level levels i =
  let acc = ref [] in
  Array.iteri (fun v l -> if l >= i then acc := v :: !acc) levels;
  List.rev !acc

let build_with ~params ~levels g =
  let n = Graph.n g in
  if Array.length levels <> n then invalid_arg "Fibonacci.build_with: levels size";
  let o = params.Fib_params.o in
  let spanner = Edge_set.create g in
  let ws = Bfs.Workspace.create g in
  let per_level = Array.make (o + 1) { members = 0; ball_paths = 0; max_ball = 0 } in
  for i = 0 to o do
    let ri = Fib_params.radius params i in
    (* Distance to V_{i+1}, capped at ri + 1 (we only compare against
       distances <= ri); infinity when the level is empty (i = o). *)
    let next_members = members_of_level levels (i + 1) in
    let dist_next =
      if next_members = [] then None
      else Some (Bfs.multi_source ~radius:(ri + 1) g ~sources:next_members)
    in
    let delta_next v =
      match dist_next with
      | None -> max_int
      | Some f ->
          let d = f.Bfs.dist.(v) in
          if d < 0 then max_int else d
    in
    (* Parent forest: P(v, p_i v) for delta(v, V_i) <= ell^(i-1),
       realized by keeping the BFS-forest parent edge of every vertex
       within that radius (every vertex of such a path is itself within
       the radius, so the whole path lands in the spanner). *)
    if i >= 1 then begin
      let forest =
        Bfs.multi_source ~radius:(Fib_params.radius params (i - 1)) g
          ~sources:(members_of_level levels i)
      in
      Array.iteri
        (fun v e -> if e >= 0 && forest.Bfs.dist.(v) > 0 then Edge_set.add spanner e)
        forest.Bfs.parent_edge
    end;
    (* Ball paths: for v in V_{i-1}, connect to every V_i vertex closer
       than both ell^i and delta(v, V_{i+1}). *)
    let sources = if i = 0 then List.init n (fun v -> v) else members_of_level levels (i - 1) in
    let paths = ref 0 and max_ball = ref 0 in
    List.iter
      (fun v ->
        let rv = Stdlib.min ri (delta_next v - 1) in
        if rv >= 1 then begin
          let ball = ref [] in
          Bfs.Workspace.run ws ~src:v ~radius:rv ~on_visit:(fun ~v:u ~dist ->
              if dist >= 1 && levels.(u) >= i then ball := u :: !ball);
          let size = List.length !ball in
          if size > !max_ball then max_ball := size;
          List.iter
            (fun u ->
              incr paths;
              List.iter (Edge_set.add spanner) (Bfs.Workspace.path_edges_to_source ws u))
            !ball
        end)
      sources;
    per_level.(i) <-
      {
        members = List.length (members_of_level levels i);
        ball_paths = !paths;
        max_ball = !max_ball;
      }
  done;
  { spanner; params; levels; per_level }

let build ?o ?eps ?ell ~seed g =
  let n = Graph.n g in
  let params = Fib_params.make ~n ?o ?eps ?ell () in
  let rng = Util.Prng.create ~seed in
  let levels = Fib_params.draw_levels rng params in
  build_with ~params ~levels g
