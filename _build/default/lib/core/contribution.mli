(** The exact worst-case expected edge contribution [X^t_p] of
    Lemma 6 — the quantity with which the paper corrects Baswana and
    Sen's size analysis.

    A vertex facing [t] consecutive [Expand] calls at sampling
    probability [p], adversarially made adjacent to [q_i] live clusters
    at call [i], contributes in expectation
    [X^t_p = max_q ((1 - (1-p)^(q+1)) X^(t-1)_p + q (1-p)^(q+1)
             + (1-p)(1 - (1-p)^q))]
    spanner edges.  The paper proves [X^t_p <= p^-1 (ln(t+1) - zeta) + t]
    with [zeta = ln 2 - 1/e] (inequality (4)), refuting the claimed
    [O(1)·p^-1 + t] of Baswana–Sen's Lemma 4.1. *)

val xtp : p:float -> t:int -> float
(** Exact value by dynamic programming, maximizing over integer [q]
    (the optimum is near [t + p^-1 (ln t - zeta + 1)]; the search
    covers a comfortably larger range).  Requires [0 < p <= 1],
    [t >= 0]. *)

val xtp_sequence : p:float -> t:int -> float array
(** [|X^0_p; X^1_p; …; X^t_p|] — one DP pass. *)

val paper_bound : p:float -> t:int -> float
(** [p^-1 (ln (t+1) - zeta) + t], the corrected upper bound. *)

val argmax_q : p:float -> xprev:float -> int
(** The adversary's best [q] against a vertex whose remaining
    contribution would be [xprev]: maximizes
    [(q - 1 - xprev)(1-p)^(q+1)] + const.  Exposed for the E9
    experiment table. *)
