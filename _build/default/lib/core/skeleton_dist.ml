module Graph = Graphlib.Graph
module Edge_set = Graphlib.Edge_set
module Sim = Distnet.Sim

type result = {
  spanner : Edge_set.t;
  plan : Plan.t;
  aborts : int;
  stats : Sim.stats;
}

type msg =
  | Exchange of { cl : int; fu : int }
  | Report_none
  | Report of { edge : int; target_cl : int; target_fu : int }
  | On_path of { edge : int; new_cl : int; new_fu : int }
  | Off_path of { new_cl : int; new_fu : int }
  | P2_register
  | P2_unregister
  | Die_start
  | Die_up of { entries : (int * int) list; finished : bool }
  | Final_down of { edges : int list; finished : bool }
  | Abort
  | Dead

let words = function
  | Exchange _ -> 2
  | Report_none -> 1
  | Report _ -> 3
  | On_path _ -> 3
  | Off_path _ -> 2
  | P2_register | P2_unregister -> 1
  | Die_start -> 1
  | Die_up { entries; _ } -> (2 * List.length entries) + 1
  | Final_down { edges; _ } -> List.length edges + 1
  | Abort -> 1
  | Dead -> 1

(* Mutable per-node state.  Everything a node reads during the protocol
   is either local, carried by a received message, or part of the
   globally-known schedule — the driver below only sequences phases. *)
type node = {
  id : int;
  mutable alive : bool;
  mutable cl_center : int;
  mutable cl_fu : int;
  mutable p1 : int;  (** parent towards the contracted vertex's center *)
  mutable p1_children : int list;
  mutable p2 : int;  (** parent towards the cluster's center *)
  mutable p2_children : int list;
  nb_dead : (int, unit) Hashtbl.t;
  nb_edge : (int, int) Hashtbl.t;  (** neighbor -> incident edge id *)
  (* per-call scratch *)
  mutable nb_cl : (int, int * int) Hashtbl.t;  (** neighbor -> (cl, fu) *)
  mutable deciding : bool;
  mutable pending : int;  (** convergecast reports still awaited *)
  mutable best : (int * int * int) option;  (** edge, target cl, target fu *)
  mutable best_peer : int;  (** crossing neighbor of my own candidate *)
  mutable best_from : int;  (** child that supplied [best]; -1 = self *)
  mutable is_dying : bool;
  mutable die_queue : (int * int) Queue.t;
  mutable die_sent : (int, int) Hashtbl.t;  (** cl -> best edge forwarded *)
  mutable die_children_pending : int;
  mutable die_done_sent : bool;
  mutable fin_queue : int Queue.t;
  mutable fin_src_done : bool;
  mutable fin_done_sent : bool;
  mutable fin_aborting : bool;
}

let fresh_node id =
  {
    id;
    alive = true;
    cl_center = id;
    cl_fu = 0;
    p1 = -1;
    p1_children = [];
    p2 = -1;
    p2_children = [];
    nb_dead = Hashtbl.create 4;
    nb_edge = Hashtbl.create 4;
    nb_cl = Hashtbl.create 4;
    deciding = false;
    pending = 0;
    best = None;
    best_peer = -1;
    best_from = -1;
    is_dying = false;
    die_queue = Queue.create ();
    die_sent = Hashtbl.create 4;
    die_children_pending = 0;
    die_done_sent = false;
    fin_queue = Queue.create ();
    fin_src_done = false;
    fin_done_sent = false;
    fin_aborting = false;
  }

let build_with ~plan ~sampling g =
  let n = Graph.n g in
  let nodes = Array.init n fresh_node in
  Array.iter
    (fun nd -> nd.cl_fu <- Sampling.first_unsampled sampling nd.id)
    nodes;
  Array.iter
    (fun nd ->
      Graph.iter_neighbors g nd.id (fun w e -> Hashtbl.replace nd.nb_edge w e))
    nodes;
  let net = Sim.create g in
  let spanner = Edge_set.create g in
  let aborts = ref 0 in
  let budget = plan.Plan.word_budget in
  let die_cap = Stdlib.max 1 (budget / 2) in
  let fin_cap = Stdlib.max 1 budget in
  let send ~src ~dst m = Sim.send net ~src ~dst ~words:(words m) m in
  (* Deferred p2 (un)registrations, flushed in their own phase to keep
     the one-message-per-link-per-round rule easy to respect. *)
  let notifications = ref [] in
  let set_p2 nd target =
    if nd.p2 <> target then begin
      if nd.p2 >= 0 then notifications := (nd.id, nd.p2, P2_unregister) :: !notifications;
      if target >= 0 then notifications := (nd.id, target, P2_register) :: !notifications;
      nd.p2 <- target
    end
  in

  (* ---------------- per-phase handlers ---------------- *)
  let handle_exchange ~dst ~src m =
    match m with
    | Exchange { cl; fu } ->
        let nd = nodes.(dst) in
        if nd.alive then Hashtbl.replace nd.nb_cl src (cl, fu)
    | _ -> assert false
  in

  let merge_report nd ~from candidate =
    (match candidate with
    | None -> ()
    | Some (e, cl, fu) -> (
        match nd.best with
        | Some (e', _, _) when e' <= e -> ()
        | _ ->
            nd.best <- Some (e, cl, fu);
            nd.best_from <- from));
    nd.pending <- nd.pending - 1;
    if nd.pending = 0 && nd.p1 >= 0 then
      match nd.best with
      | None -> send ~src:nd.id ~dst:nd.p1 Report_none
      | Some (edge, target_cl, target_fu) ->
          send ~src:nd.id ~dst:nd.p1 (Report { edge; target_cl; target_fu })
  in

  let handle_converge ~dst ~src m =
    let nd = nodes.(dst) in
    if nd.alive then
      match m with
      | Report_none -> merge_report nd ~from:src None
      | Report { edge; target_cl; target_fu } ->
          merge_report nd ~from:src (Some (edge, target_cl, target_fu))
      | _ -> assert false
  in

  let adopt_cluster nd ~cl ~fu =
    nd.cl_center <- cl;
    nd.cl_fu <- fu
  in

  let rec start_wave nd =
    (* [nd]'s merged best is the contracted vertex's winning candidate;
       push the decision towards the proposer, everyone else off-path. *)
    match nd.best with
    | None -> assert false
    | Some (edge, new_cl, new_fu) ->
        adopt_cluster nd ~cl:new_cl ~fu:new_fu;
        if nd.best_from < 0 then begin
          (* I proposed the winning edge: hook onto the sampled cluster. *)
          Edge_set.add spanner edge;
          set_p2 nd nd.best_peer;
          List.iter
            (fun c -> send ~src:nd.id ~dst:c (Off_path { new_cl; new_fu }))
            nd.p1_children
        end
        else begin
          set_p2 nd nd.best_from;
          List.iter
            (fun c ->
              if c = nd.best_from then
                send ~src:nd.id ~dst:c (On_path { edge; new_cl; new_fu })
              else send ~src:nd.id ~dst:c (Off_path { new_cl; new_fu }))
            nd.p1_children
        end

  and handle_wave ~dst ~src m =
    let nd = nodes.(dst) in
    match m with
    | On_path _ ->
        (* My subtree supplied the winner, so my merged best is the
           edge named in the message; [start_wave] adopts it and pushes
           the decision further down. *)
        if nd.alive then start_wave nd
    | Off_path { new_cl; new_fu } ->
        if nd.alive then begin
          adopt_cluster nd ~cl:new_cl ~fu:new_fu;
          set_p2 nd nd.p1;
          List.iter
            (fun c -> send ~src:nd.id ~dst:c (Off_path { new_cl; new_fu }))
            nd.p1_children
        end
    | Die_start ->
        if nd.alive then begin
          nd.is_dying <- true;
          List.iter (fun c -> send ~src:nd.id ~dst:c Die_start) nd.p1_children
        end
    | P2_register -> nd.p2_children <- src :: nd.p2_children
    | P2_unregister -> nd.p2_children <- List.filter (fun c -> c <> src) nd.p2_children
    | _ -> assert false
  in

  (* Enqueue a (cluster, edge) entry unless a no-worse one was already
     forwarded; intermediate dedup is best-effort, the center's merge is
     authoritative. *)
  let die_offer nd (cl, e) =
    match Hashtbl.find_opt nd.die_sent cl with
    | Some e' when e' <= e -> ()
    | _ ->
        Hashtbl.replace nd.die_sent cl e;
        Queue.add (cl, e) nd.die_queue
  in

  let handle_die_up center_best ~dst ~src:_ m =
    let nd = nodes.(dst) in
    if nd.alive then
      match m with
      | Die_up { entries; finished } ->
          if nd.p1 < 0 then begin
            (* Center: authoritative merge. *)
            List.iter
              (fun (cl, e) ->
                match Hashtbl.find_opt center_best.(nd.id) cl with
                | Some e' when e' <= e -> ()
                | _ -> Hashtbl.replace center_best.(nd.id) cl e)
              entries;
            if finished then nd.die_children_pending <- nd.die_children_pending - 1
          end
          else begin
            List.iter (die_offer nd) entries;
            if finished then nd.die_children_pending <- nd.die_children_pending - 1
          end
      | _ -> assert false
  in

  let handle_final ~dst ~src:_ m =
    let nd = nodes.(dst) in
    if nd.alive then
      match m with
      | Final_down { edges; finished } ->
          List.iter
            (fun e ->
              let u, v = Graph.edge_endpoints g e in
              if u = nd.id || v = nd.id then Edge_set.add spanner e;
              Queue.add e nd.fin_queue)
            edges;
          if finished then nd.fin_src_done <- true
      | Abort ->
          nd.fin_aborting <- true;
          nd.fin_src_done <- true;
          (* Keep every incident crossing edge, as the paper's escape
             hatch prescribes. *)
          Hashtbl.iter
            (fun w (cl, _) ->
              if cl <> nd.cl_center then
                Edge_set.add spanner (Hashtbl.find nd.nb_edge w))
            nd.nb_cl
      | _ -> assert false
  in

  let handle_dead ~dst ~src m =
    match m with
    | Dead ->
        (* Besides marking the link dead, forget the late neighbor as a
           tree child: a contracted vertex that attached to us earlier
           this round may die later in the round, and its stale
           registration would make us wait forever for its report. *)
        let nd = nodes.(dst) in
        Hashtbl.replace nd.nb_dead src ();
        nd.p2_children <- List.filter (fun c -> c <> src) nd.p2_children;
        nd.p1_children <- List.filter (fun c -> c <> src) nd.p1_children
    | _ -> assert false
  in

  (* ---------------- driver ---------------- *)
  let run_call (call : Plan.call) =
    let k = call.Plan.index in
    (* Phase 1: exchange cluster identities over live links. *)
    Array.iter
      (fun nd ->
        if nd.alive then begin
          nd.nb_cl <- Hashtbl.create 8;
          nd.deciding <- false;
          nd.best <- None;
          nd.best_peer <- -1;
          nd.best_from <- -1;
          nd.is_dying <- false;
          nd.die_queue <- Queue.create ();
          nd.die_sent <- Hashtbl.create 4;
          nd.die_done_sent <- false;
          nd.fin_queue <- Queue.create ();
          nd.fin_src_done <- false;
          nd.fin_done_sent <- false;
          nd.fin_aborting <- false
        end)
      nodes;
    Array.iter
      (fun nd ->
        if nd.alive then
          Hashtbl.iter
            (fun w _ ->
              if not (Hashtbl.mem nd.nb_dead w) then
                send ~src:nd.id ~dst:w (Exchange { cl = nd.cl_center; fu = nd.cl_fu }))
            nd.nb_edge)
      nodes;
    Sim.run_until_quiescent net handle_exchange;
    (* Phase 2: local candidates + convergecast inside unsampled
       contracted vertices. *)
    Array.iter
      (fun nd ->
        if nd.alive && nd.cl_fu <= k then begin
          nd.deciding <- true;
          Hashtbl.iter
            (fun w (cl, fu) ->
              if cl <> nd.cl_center && fu > k then begin
                let e = Hashtbl.find nd.nb_edge w in
                match nd.best with
                | Some (e', _, _) when e' <= e -> ()
                | _ ->
                    nd.best <- Some (e, cl, fu);
                    nd.best_peer <- w;
                    nd.best_from <- -1
              end)
            nd.nb_cl;
          nd.pending <- List.length nd.p1_children
        end)
      nodes;
    Array.iter
      (fun nd ->
        if nd.alive && nd.deciding && nd.pending = 0 && nd.p1 >= 0 then
          match nd.best with
          | None -> send ~src:nd.id ~dst:nd.p1 Report_none
          | Some (edge, target_cl, target_fu) ->
              send ~src:nd.id ~dst:nd.p1 (Report { edge; target_cl; target_fu }))
      nodes;
    Sim.run_until_quiescent net handle_converge;
    (* Phase 3: decision waves from every deciding center. *)
    Array.iter
      (fun nd ->
        if nd.alive && nd.deciding && nd.p1 < 0 then begin
          if nd.pending <> 0 then
            failwith "Skeleton_dist: convergecast incomplete at decision time";
          match nd.best with
          | Some _ -> start_wave nd
          | None ->
              nd.is_dying <- true;
              List.iter (fun c -> send ~src:nd.id ~dst:c Die_start) nd.p1_children
        end)
      nodes;
    Sim.run_until_quiescent net handle_wave;
    (* Phase 3b: deferred p2 (un)registrations. *)
    List.iter (fun (src, dst, m) -> send ~src ~dst m) !notifications;
    notifications := [];
    Sim.run_until_quiescent net handle_wave;
    (* Phase 4: dying contracted vertices stream their (cluster, edge)
       lists to the center, budget words per link per round. *)
    let center_best = Array.make n (Hashtbl.create 0) in
    Array.iter
      (fun nd ->
        if nd.alive && nd.is_dying then begin
          nd.die_children_pending <- List.length nd.p1_children;
          if nd.p1 < 0 then begin
            center_best.(nd.id) <- Hashtbl.create 16;
            (* The center's own incidences go straight into the merge. *)
            Hashtbl.iter
              (fun w (cl, _) ->
                if cl <> nd.cl_center then begin
                  let e = Hashtbl.find nd.nb_edge w in
                  match Hashtbl.find_opt center_best.(nd.id) cl with
                  | Some e' when e' <= e -> ()
                  | _ -> Hashtbl.replace center_best.(nd.id) cl e
                end)
              nd.nb_cl
          end
          else
            Hashtbl.iter
              (fun w (cl, _) ->
                if cl <> nd.cl_center then die_offer nd (cl, Hashtbl.find nd.nb_edge w))
              nd.nb_cl
        end)
      nodes;
    let die_active () =
      Array.exists
        (fun nd ->
          nd.alive && nd.is_dying
          && (nd.die_children_pending > 0
             || (nd.p1 >= 0 && not nd.die_done_sent)))
        nodes
    in
    let guard = ref 0 in
    while die_active () do
      incr guard;
      if !guard > 4 * n + 1000 then failwith "Skeleton_dist: dying phase stuck";
      Array.iter
        (fun nd ->
          if
            nd.alive && nd.is_dying && nd.p1 >= 0 && not nd.die_done_sent
          then begin
            let batch = ref [] in
            let count = ref 0 in
            while !count < die_cap && not (Queue.is_empty nd.die_queue) do
              batch := Queue.pop nd.die_queue :: !batch;
              incr count
            done;
            let finished =
              nd.die_children_pending = 0 && Queue.is_empty nd.die_queue
            in
            if !batch <> [] || finished then begin
              send ~src:nd.id ~dst:nd.p1 (Die_up { entries = !batch; finished });
              if finished then nd.die_done_sent <- true
            end
          end)
        nodes;
      ignore (Sim.step net (handle_die_up center_best))
    done;
    (* Phase 5: centers resolve — abort or broadcast the chosen edges. *)
    Array.iter
      (fun nd ->
        if nd.alive && nd.is_dying && nd.p1 < 0 then begin
          let best = center_best.(nd.id) in
          if Hashtbl.length best > call.Plan.abort_q then begin
            incr aborts;
            nd.fin_aborting <- true;
            (* The center keeps its own crossing edges too. *)
            Hashtbl.iter
              (fun w (cl, _) ->
                if cl <> nd.cl_center then
                  Edge_set.add spanner (Hashtbl.find nd.nb_edge w))
              nd.nb_cl;
            List.iter (fun c -> send ~src:nd.id ~dst:c Abort) nd.p1_children;
            nd.fin_src_done <- true;
            nd.fin_done_sent <- true
          end
          else begin
            Hashtbl.iter
              (fun _ e ->
                let u, v = Graph.edge_endpoints g e in
                if u = nd.id || v = nd.id then Edge_set.add spanner e;
                Queue.add e nd.fin_queue)
              best;
            nd.fin_src_done <- true
          end
        end)
      nodes;
    let fin_active () =
      Array.exists
        (fun nd ->
          nd.alive && nd.is_dying
          && ((not nd.fin_src_done)
             || (nd.p1_children <> [] && not nd.fin_done_sent)))
        nodes
    in
    let guard = ref 0 in
    while fin_active () do
      incr guard;
      if !guard > 4 * n + 1000 then failwith "Skeleton_dist: final phase stuck";
      Array.iter
        (fun nd ->
          if
            nd.alive && nd.is_dying && nd.p1_children <> []
            && not nd.fin_done_sent
          then
            if nd.fin_aborting then begin
              List.iter (fun c -> send ~src:nd.id ~dst:c Abort) nd.p1_children;
              nd.fin_done_sent <- true
            end
            else begin
              let batch = ref [] in
              let count = ref 0 in
              while !count < fin_cap && not (Queue.is_empty nd.fin_queue) do
                batch := Queue.pop nd.fin_queue :: !batch;
                incr count
              done;
              let finished = nd.fin_src_done && Queue.is_empty nd.fin_queue in
              if !batch <> [] || finished then begin
                List.iter
                  (fun c ->
                    send ~src:nd.id ~dst:c
                      (Final_down { edges = !batch; finished }))
                  nd.p1_children;
                if finished then nd.fin_done_sent <- true
              end
            end)
        nodes;
      ignore (Sim.step net handle_final)
    done;
    (* Phase 6: deaths take effect; one notice per boundary link. *)
    let newly_dead = ref [] in
    Array.iter
      (fun nd ->
        if nd.alive && nd.is_dying then begin
          nd.alive <- false;
          newly_dead := nd :: !newly_dead
        end)
      nodes;
    List.iter
      (fun nd ->
        (* A node cannot know a neighbor died in this very call, so
           simultaneous deaths cost one wasted notice per link — the
           real protocol pays the same. *)
        Hashtbl.iter
          (fun w _ ->
            if not (Hashtbl.mem nd.nb_dead w) then send ~src:nd.id ~dst:w Dead)
          nd.nb_edge)
      !newly_dead;
    Sim.run_until_quiescent net handle_dead
  in

  let contract () =
    Array.iter
      (fun nd ->
        if nd.alive then begin
          nd.p1 <- nd.p2;
          nd.p1_children <- nd.p2_children
        end)
      nodes
  in

  let current_round = ref 0 in
  Array.iter
    (fun (call : Plan.call) ->
      if call.Plan.round > !current_round then begin
        contract ();
        current_round := call.Plan.round
      end;
      run_call call)
    plan.Plan.calls;
  { spanner; plan; aborts = !aborts; stats = Sim.stats net }

let build ?(d = 4) ?(eps = 0.5) ~seed g =
  let plan = Plan.make ~n:(Graph.n g) ~d ~eps () in
  let rng = Util.Prng.create ~seed in
  let sampling = Sampling.draw rng ~n:(Graph.n g) plan in
  build_with ~plan ~sampling g
