(** Corollary 1's construction: a Fibonacci spanner {e unioned with} a
    Theorem 2 skeleton.

    The Fibonacci spanner alone has distortion [2^(o+1)] at distance 1,
    which for the sparsest order [o = log_phi log n] is about
    [(log n)^1.44]; including an [O(log n / log log log n)]-spanner of
    size [O(n log log n)] (the skeleton with
    [D = Theta(log log n)]) caps the short-range distortion while
    keeping the total size [O(n (eps^-1 log log n)^phi)].  This module
    implements exactly that union. *)

type result = {
  spanner : Graphlib.Edge_set.t;
  skeleton_size : int;
  fibonacci_size : int;
  params : Fib_params.t;
}

val build :
  ?o:int ->
  ?eps:float ->
  ?ell:int ->
  ?d:int ->
  seed:int ->
  Graphlib.Graph.t ->
  result
(** [d] defaults to [max 4 (round (log2 (log2 n)))] — the
    [Theta(log log n)] density the corollary uses; the other knobs are
    as in {!Fibonacci.build}. *)
