(** Parameters of a Fibonacci spanner (Section 4.1 and Lemma 8).

    The construction is governed by the {e order} [o] (in
    [1 .. log_phi log n]), the ball-growth base [ell] and the sampling
    probabilities [q_0 = 1 >= q_1 >= … >= q_o >= q_{o+1} = 1/n].
    Lemma 8 solves the Fibonacci-like recurrences
    [f_i = f_{i-1} + f_{i-2} + 1], [h_i = h_{i-1} + h_{i-2} + (i-1)]
    (so [f_i = g_i = F_{i+2} - 1], [h_i = F_{i+3} - (i+2)]) and sets

    [q_i = n^(-f_i * alpha) * ell^(-g_i * phi + h_i)],

    with [alpha = 1/(F_{o+3} - 1)].  The monotonicity [q_i < q_{i-1}]
    is exactly the golden-ratio fact [phi F_k + 1 > F_{k+1}]. *)

type t = {
  n : int;
  o : int;  (** order *)
  ell : int;  (** ball base; Theorem 7 uses [ell = 3 o / eps + 2] *)
  eps : float;
  qs : float array;  (** [qs.(i)] = q_i for i in [0 .. o+1]; q_0 = 1 *)
}

val make : n:int -> ?o:int -> ?eps:float -> ?ell:int -> unit -> t
(** [o] defaults to the sparsest order [log_phi log n] (the paper's
    headline parametrization); [eps] to [0.5]; [ell] to
    [ceil (3 o / eps) + 2] (Theorem 7's choice).  [q_i] values are
    clamped to be nonincreasing and at least [1/n]. *)

val fi : int -> int
(** [f_i = F_{i+2} - 1]. *)

val hi : int -> int
(** [h_i = F_{i+3} - (i + 2)]. *)

val radius : t -> int -> int
(** [radius t i] is [ell^i], saturating. *)

val level_probability : t -> int -> float
(** [q_i / q_{i-1}], the conditional probability that a [V_{i-1}]
    vertex is promoted to [V_i]. *)

val budgeted : t -> tee:int -> t
(** Theorem 8's message-budget adjustment: find the largest [i] with
    [q_i / q_{i+1} <= n^(1/tee)], keep [q_1 .. q_{i+1}] and replace
    every later probability by [q_{i+1} * n^(-(j-i-1)/tee)], so that no
    consecutive ratio — and hence no expected relay load in the ball
    protocol — exceeds the budget.  "The overall effect of limiting
    the message size to O(n^(1/t)) is to increase the order o by at
    most t" (§4.4). *)

val draw_levels : Util.Prng.t -> t -> int array
(** Per-vertex maximal level: [levels.(v) = max { i | v in V_i }]
    (0 for every vertex; never exceeds [o]). *)

val pp : Format.formatter -> t -> unit
