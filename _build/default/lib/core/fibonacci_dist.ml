module Graph = Graphlib.Graph
module Edge_set = Graphlib.Edge_set
module Sim = Distnet.Sim

type result = {
  spanner : Edge_set.t;
  params : Fib_params.t;
  levels : int array;
  stats : Sim.stats;
  budget_words : int;
  blocked : int;
  failures : int;
}

type msg =
  | Bfs_label of int  (** multi-source BFS: nearest-source id *)
  | Origins of int list  (** ball flood: newly learned V_i identities *)
  | Traces of int list  (** trace-back requests: origin ids *)
  | Blocked of (int * int * int) list  (** (z, ceased-at k, hops so far) *)
  | Keep_all of int  (** failure command, hops so far *)

let words = function
  | Bfs_label _ -> 1
  | Origins l -> Stdlib.max 1 (List.length l)
  | Traces l -> Stdlib.max 1 (List.length l)
  | Blocked l -> Stdlib.max 1 (3 * List.length l)
  | Keep_all _ -> 1

let build_with ~params ~levels ~t g =
  let n = Graph.n g in
  if Array.length levels <> n then invalid_arg "Fibonacci_dist.build_with";
  let o = params.Fib_params.o in
  let budget =
    Stdlib.max 1
      (int_of_float (Float.ceil (float_of_int n ** (1. /. float_of_int (Stdlib.max 1 t)))))
  in
  let net = Sim.create g in
  let spanner = Edge_set.create g in
  let blocked_total = ref 0 in
  let failures = ref 0 in
  let send ~src ~dst m = Sim.send net ~src ~dst ~words:(words m) m in

  (* --------------------------------------------------------------
     Synchronized multi-source BFS with minimum-id tie-break out to
     [radius]; returns (dist, source, parent_edge).  Costs [radius]
     rounds of unit messages (nodes relay only their final label, so
     each node sends once). *)
  let bfs_labels ~sources ~radius =
    let dist = Array.make n (-1) in
    let label = Array.make n (-1) in
    let parent_edge = Array.make n (-1) in
    List.iter
      (fun s ->
        dist.(s) <- 0;
        label.(s) <- s)
      sources;
    let frontier = ref sources in
    let r = ref 0 in
    while !frontier <> [] && !r < radius do
      incr r;
      List.iter
        (fun v ->
          Graph.iter_neighbors g v (fun w _ ->
              if dist.(w) < 0 then send ~src:v ~dst:w (Bfs_label label.(v))))
        !frontier;
      let next = ref [] in
      ignore
        (Sim.step net (fun ~dst ~src m ->
             match m with
             | Bfs_label l ->
                 if dist.(dst) < 0 then begin
                   dist.(dst) <- !r;
                   label.(dst) <- l;
                   parent_edge.(dst) <-
                     (match Graph.find_edge g dst src with
                     | Some e -> e
                     | None -> assert false);
                   next := dst :: !next
                 end
                 else if dist.(dst) = !r && l < label.(dst) then begin
                   label.(dst) <- l;
                   parent_edge.(dst) <-
                     (match Graph.find_edge g dst src with
                     | Some e -> e
                     | None -> assert false)
                 end
             | _ -> assert false));
      frontier := !next
    done;
    (dist, label, parent_edge)
  in

  let members i =
    let acc = ref [] in
    Array.iteri (fun v l -> if l >= i then acc := v :: !acc) levels;
    !acc
  in

  for i = 0 to o do
    let ri = Fib_params.radius params i in
    (* Stage 1 (parents), only meaningful for i >= 1. *)
    if i >= 1 then begin
      let radius = Fib_params.radius params (i - 1) in
      let dist, _, parent_edge = bfs_labels ~sources:(members i) ~radius in
      Array.iteri
        (fun v e -> if e >= 0 && dist.(v) > 0 then Edge_set.add spanner e)
        parent_edge
    end;
    (* Distance to V_{i+1} (for the ball filter), exact: the nearest
       source always gets through unit-message BFS. *)
    let next = if i = o then [] else members (i + 1) in
    let delta_next =
      if next = [] then Array.make n max_int
      else begin
        let dist, _, _ = bfs_labels ~sources:next ~radius:(ri + 1) in
        Array.map (fun d -> if d < 0 then max_int else d) dist
      end
    in
    (* Stage 2 (balls): flood V_i identities to radius ell^i under the
       word budget. *)
    let known : (int, int * int) Hashtbl.t array =
      Array.init n (fun _ -> Hashtbl.create 8)
    in
    (* origin -> (dist, pred); pred = -1 at the origin itself *)
    let newly = Array.make n [] in
    let blocked_at = Array.make n (-1) in
    List.iter
      (fun y ->
        Hashtbl.replace known.(y) y (0, -1);
        newly.(y) <- [ y ])
      (members i);
    for r = 1 to ri do
      Array.iteri
        (fun z fresh ->
          if fresh <> [] && blocked_at.(z) < 0 then begin
            let per_neighbor w =
              List.filter
                (fun y ->
                  match Hashtbl.find_opt known.(z) y with
                  | Some (_, pred) -> pred <> w
                  | None -> false)
                fresh
            in
            (* A node forced beyond the budget ceases participation. *)
            let too_big = ref false in
            Graph.iter_neighbors g z (fun w _ ->
                if List.length (per_neighbor w) > budget then too_big := true);
            if !too_big then begin
              blocked_at.(z) <- r - 1;
              incr blocked_total
            end
            else
              Graph.iter_neighbors g z (fun w _ ->
                  match per_neighbor w with
                  | [] -> ()
                  | l -> send ~src:z ~dst:w (Origins l))
          end)
        newly;
      Array.fill newly 0 n [];
      ignore
        (Sim.step net (fun ~dst ~src m ->
             match m with
             | Origins l ->
                 if blocked_at.(dst) < 0 then
                   List.iter
                     (fun y ->
                       if not (Hashtbl.mem known.(dst) y) then begin
                         Hashtbl.replace known.(dst) y (r, src);
                         newly.(dst) <- y :: newly.(dst)
                       end)
                     l
             | _ -> assert false))
    done;
    (* Las Vegas detection: blocked nodes flood (z, ceased-at) to
       radius ell^i; V_{i-1} vertices test the failure predicate. *)
    let lv_failed = ref [] in
    if Array.exists (fun b -> b >= 0) blocked_at then begin
      let seen : (int, int) Hashtbl.t array = Array.init n (fun _ -> Hashtbl.create 4) in
      (* seen.(v) : z -> hops (distance at which v learned of z) *)
      let queue : (int * int * int) Queue.t array = Array.init n (fun _ -> Queue.create ()) in
      Array.iteri
        (fun z k ->
          if k >= 0 then begin
            Hashtbl.replace seen.(z) z 0;
            Queue.add (z, k, 0) queue.(z)
          end)
        blocked_at;
      let cap = Stdlib.max 1 (budget / 3) in
      let active () = Array.exists (fun q -> not (Queue.is_empty q)) queue in
      let guard = ref 0 in
      while active () do
        incr guard;
        if !guard > (4 * ri) + (4 * n) + 100 then failwith "Fibonacci_dist: LV flood stuck";
        Array.iteri
          (fun v q ->
            if not (Queue.is_empty q) then begin
              let batch = ref [] in
              let count = ref 0 in
              while !count < cap && not (Queue.is_empty q) do
                batch := Queue.pop q :: !batch;
                incr count
              done;
              Graph.iter_neighbors g v (fun w _ ->
                  send ~src:v ~dst:w (Blocked !batch))
            end)
          queue;
        ignore
          (Sim.step net (fun ~dst ~src:_ m ->
               match m with
               | Blocked l ->
                   List.iter
                     (fun (z, k, h) ->
                       let h = h + 1 in
                       if (not (Hashtbl.mem seen.(dst) z)) && h < ri then begin
                         Hashtbl.replace seen.(dst) z h;
                         Queue.add (z, k, h) queue.(dst)
                       end
                       else if not (Hashtbl.mem seen.(dst) z) then
                         Hashtbl.replace seen.(dst) z h)
                     l
               | _ -> assert false))
      done;
      (* Failure predicate at V_{i-1} vertices. *)
      let is_source x = if i = 0 then true else levels.(x) >= i - 1 in
      for x = 0 to n - 1 do
        if is_source x then
          Hashtbl.iter
            (fun z hops ->
              let k = blocked_at.(z) in
              if k >= 0 && hops + k < delta_next.(x) && hops + k <= ri then
                lv_failed := x :: !lv_failed)
            seen.(x)
      done
    end;
    (* Failure recovery: each failed x commands its ell^i-ball to keep
       all incident edges (flooded with hop counters, unit words). *)
    (match List.sort_uniq compare !lv_failed with
    | [] -> ()
    | failed ->
        failures := !failures + List.length failed;
        let reached = Array.make n (-1) in
        List.iter
          (fun x ->
            reached.(x) <- 0;
            Graph.iter_neighbors g x (fun w e ->
                Edge_set.add spanner e;
                send ~src:x ~dst:w (Keep_all 1)))
          failed;
        let guard = ref 0 in
        while not (Sim.quiescent net) do
          incr guard;
          if !guard > 2 * ri + 10 then failwith "Fibonacci_dist: keep-all flood stuck";
          ignore
            (Sim.step net (fun ~dst ~src:_ m ->
                 match m with
                 | Keep_all h ->
                     if reached.(dst) < 0 then begin
                       reached.(dst) <- h;
                       Graph.iter_neighbors g dst (fun w e ->
                           Edge_set.add spanner e;
                           if h < ri && reached.(w) < 0 then
                             send ~src:dst ~dst:w (Keep_all (h + 1)))
                     end
                 | _ -> assert false))
        done);
    (* Trace-back: sources pull the shortest paths to their balls. *)
    let pending : (int, int list) Hashtbl.t = Hashtbl.create 64 in
    (* node -> origins whose trace passes through it, not yet forwarded *)
    let traced : (int, unit) Hashtbl.t array = Array.init n (fun _ -> Hashtbl.create 4) in
    let enqueue v y = Hashtbl.replace pending v (y :: Option.value ~default:[] (Hashtbl.find_opt pending v)) in
    let is_source x = if i = 0 then true else levels.(x) >= i - 1 in
    for x = 0 to n - 1 do
      if is_source x then begin
        let rx = Stdlib.min ri (delta_next.(x) - 1) in
        Hashtbl.iter
          (fun y (d, _) ->
            if d >= 1 && d <= rx then begin
              Hashtbl.replace traced.(x) y ();
              enqueue x y
            end)
          known.(x)
      end
    done;
    let cap = Stdlib.max 1 budget in
    let guard = ref 0 in
    let rec drain () =
      (* Send one batch per (node, next-hop) per round. *)
      let sends : (int * int, int list) Hashtbl.t = Hashtbl.create 64 in
      Hashtbl.iter
        (fun v ys ->
          List.iter
            (fun y ->
              match Hashtbl.find_opt known.(v) y with
              | Some (d, pred) when d >= 1 ->
                  Edge_set.add spanner
                    (match Graph.find_edge g v pred with
                    | Some e -> e
                    | None -> assert false);
                  let key = (v, pred) in
                  (* Do not forward the final hop: pred = y itself holds
                     the origin, no further trace needed. *)
                  if pred <> y then
                    Hashtbl.replace sends key
                      (y :: Option.value ~default:[] (Hashtbl.find_opt sends key))
              | _ -> ())
            ys)
        pending;
      Hashtbl.reset pending;
      let leftover = ref [] in
      Hashtbl.iter
        (fun (v, w) ys ->
          let rec split acc k = function
            | [] -> (List.rev acc, [])
            | rest when k = 0 -> (List.rev acc, rest)
            | y :: tl -> split (y :: acc) (k - 1) tl
          in
          let batch, rest = split [] cap ys in
          if batch <> [] then send ~src:v ~dst:w (Traces batch);
          if rest <> [] then leftover := (v, rest) :: !leftover)
        sends;
      List.iter (fun (v, ys) -> List.iter (enqueue v) ys) !leftover;
      let delivered =
        Sim.step net (fun ~dst ~src:_ m ->
            match m with
            | Traces ys ->
                List.iter
                  (fun y ->
                    if not (Hashtbl.mem traced.(dst) y) then begin
                      Hashtbl.replace traced.(dst) y ();
                      enqueue dst y
                    end)
                  ys
            | _ -> assert false)
      in
      incr guard;
      if !guard > (4 * ri) + (2 * n) + 100 then failwith "Fibonacci_dist: trace stuck";
      if delivered > 0 || Hashtbl.length pending > 0 then drain ()
    in
    if Hashtbl.length pending > 0 then drain ()
  done;
  {
    spanner;
    params;
    levels;
    stats = Sim.stats net;
    budget_words = budget;
    blocked = !blocked_total;
    failures = !failures;
  }

let build ?o ?eps ?ell ?(t = 2) ~seed g =
  (* Theorem 8: adjust the sampling probabilities so no level ratio
     exceeds the n^(1/t) budget before drawing the hierarchy. *)
  let params =
    Fib_params.budgeted (Fib_params.make ~n:(Graph.n g) ?o ?eps ?ell ()) ~tee:t
  in
  let rng = Util.Prng.create ~seed in
  let levels = Fib_params.draw_levels rng params in
  build_with ~params ~levels ~t g
