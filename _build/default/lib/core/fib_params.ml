type t = {
  n : int;
  o : int;
  ell : int;
  eps : float;
  qs : float array;
}

let fi i = Util.Fib.f (i + 2) - 1
let hi i = Util.Fib.f (i + 3) - (i + 2)

let make ~n ?o ?(eps = 0.5) ?ell () =
  if n < 1 then invalid_arg "Fib_params.make: n must be positive";
  if eps <= 0. || eps > 1. then invalid_arg "Fib_params.make: eps in (0,1]";
  let omax = Util.Fib.order_upper_bound n in
  let o = match o with None -> omax | Some o -> o in
  if o < 1 then invalid_arg "Fib_params.make: order must be >= 1";
  let ell =
    match ell with
    | Some l -> l
    | None -> int_of_float (Float.ceil (3. *. float_of_int o /. eps)) + 2
  in
  if ell < 1 then invalid_arg "Fib_params.make: ell must be >= 1";
  let nf = float_of_int n in
  let alpha = 1. /. (float_of_int (Util.Fib.f (o + 3)) -. 1.) in
  let qs = Array.make (o + 2) 1. in
  for i = 1 to o do
    let q =
      (nf ** (-.float_of_int (fi i) *. alpha))
      *. (float_of_int ell
         ** ((-.float_of_int (fi i) *. Util.Fib.phi) +. float_of_int (hi i)))
    in
    (* Keep the hierarchy nested and nonvacuous on small inputs. *)
    qs.(i) <- Stdlib.max (1. /. nf) (Stdlib.min q qs.(i - 1))
  done;
  qs.(o + 1) <- 1. /. nf;
  { n; o; ell; eps; qs }

let radius t i = Util.Tower.pow_sat t.ell i

let budgeted t ~tee =
  if tee < 1 then invalid_arg "Fib_params.budgeted: tee must be >= 1";
  let nf = float_of_int t.n in
  let ratio_cap = nf ** (1. /. float_of_int tee) in
  (* First index whose ratio to the next level violates the cap; the
     paper's "maximum i with q_i/q_{i+1} <= n^(1/t)" is [pivot - 1],
     so levels from [pivot + 1] on are re-anchored at [q_pivot]. *)
  let rec find i =
    if i >= t.o then t.o
    else if t.qs.(i) /. t.qs.(i + 1) <= ratio_cap then find (i + 1)
    else i
  in
  let pivot = find 0 in
  if pivot >= t.o then t
  else begin
    let qs = Array.copy t.qs in
    for j = pivot + 1 to t.o do
      qs.(j) <-
        Stdlib.max (1. /. nf)
          (qs.(pivot) *. (nf ** (-.float_of_int (j - pivot) /. float_of_int tee)))
    done;
    (* keep the hierarchy nested *)
    for j = 1 to t.o do
      qs.(j) <- Stdlib.min qs.(j) qs.(j - 1)
    done;
    { t with qs }
  end

let level_probability t i =
  if i < 1 || i > t.o + 1 then invalid_arg "Fib_params.level_probability";
  if t.qs.(i - 1) <= 0. then 0. else Stdlib.min 1. (t.qs.(i) /. t.qs.(i - 1))

let draw_levels rng t =
  Array.init t.n (fun _ ->
      let rec climb i =
        if i > t.o then t.o
        else if Util.Prng.bernoulli rng (level_probability t i) then climb (i + 1)
        else i - 1
      in
      climb 1)

let pp ppf t =
  Format.fprintf ppf "fibonacci n=%d o=%d ell=%d eps=%.2f qs=[" t.n t.o t.ell t.eps;
  Array.iteri
    (fun i q -> Format.fprintf ppf "%s%.2e" (if i > 0 then "; " else "") q)
    t.qs;
  Format.fprintf ppf "]"
