let e = Float.exp 1.

let skeleton_size ~n ~d =
  let nf = float_of_int n and df = float_of_int d in
  nf
  *. ((df /. e) +. 1. -. (2. /. e)
     +. ((1. +. (1. /. df)) *. (log (df +. 2.) -. Util.Tower.zeta +. 1.))
     +. ((log df +. 0.2) /. df))

let log_d ~d x = log x /. log (float_of_int d)

let skeleton_distortion ~n ~d ~eps =
  let stars = Util.Tower.log_star n - Util.Tower.log_star d in
  (1. /. eps)
  *. (2. ** float_of_int (stars + 7))
  *. log_d ~d (float_of_int (Stdlib.max 2 n))

let skeleton_time ~n ~d ~eps =
  let stars = Util.Tower.log_star n - Util.Tower.log_star d in
  let t =
    (1. /. eps)
    *. (2. ** float_of_int stars)
    *. log_d ~d (float_of_int (Stdlib.max 2 n))
  in
  t +. Util.Tower.log2 (float_of_int (Stdlib.max 2 n))

(* Lemma 10 constants for ell >= 3. *)
let c'_ell ell =
  let l = float_of_int ell in
  1. +. (((2. *. l) +. 1.) /. ((l +. 1.) *. (l -. 2.)))

let c_ell ell =
  let l = float_of_int ell in
  3. +. (((6. *. l) -. 2.) /. (l *. (l -. 2.)))

let fib_i ~ell i =
  let fi = float_of_int i in
  match ell with
  | 1 -> (2. ** (fi +. 2.)) /. 3.
  | 2 -> ((fi +. (2. /. 3.)) *. (2. ** fi)) +. (1. /. 3.)
  | _ ->
      if ell < 1 then invalid_arg "Bounds.fib_i: ell must be >= 1"
      else c'_ell ell *. (float_of_int ell ** fi)

let fib_c ~ell i =
  let fi = float_of_int i in
  match ell with
  | 1 -> 2. ** (fi +. 1.)
  | 2 -> 3. *. (fi +. 1.) *. (2. ** fi)
  | _ ->
      if ell < 1 then invalid_arg "Bounds.fib_c: ell must be >= 1"
      else begin
        let l = float_of_int ell in
        let first = c_ell ell *. (l ** fi) in
        let second = (l ** fi) +. (2. *. c'_ell ell *. fi *. (l ** (fi -. 1.))) in
        Stdlib.min first second
      end

let rec fib_i_rec ~ell i =
  let l = float_of_int ell in
  match i with
  | 0 -> 1.
  | 1 -> l +. 1.
  | _ ->
      (2. *. fib_i_rec ~ell (i - 2))
      +. fib_i_rec ~ell (i - 1)
      +. (l ** float_of_int i)
      +. ((l -. 1.) *. (l ** float_of_int (i - 2)))

let rec fib_c_rec ~ell i =
  let l = float_of_int ell in
  match i with
  | 0 -> 1.
  | 1 -> l +. 2.
  | _ ->
      let prev = fib_c_rec ~ell (i - 1) in
      Stdlib.max (l *. prev)
        (((l -. 1.) *. prev)
        +. (2. *. (fib_i_rec ~ell (i - 2) +. fib_i_rec ~ell (i - 1)))
        +. (l ** float_of_int (i - 1)))

let fib_size ~n ~o ~ell =
  let nf = float_of_int n in
  let fo3 = float_of_int (Util.Fib.f (o + 3)) in
  (float_of_int o *. nf)
  +. ((nf ** (1. +. (1. /. (fo3 -. 1.)))) *. (float_of_int ell ** Util.Fib.phi))

let fib_distortion_stage ~o ~ell =
  match ell with
  | 1 -> 2. ** float_of_int (o + 1)
  | 2 -> 3. *. float_of_int (o + 1)
  | _ ->
      if ell < 1 then invalid_arg "Bounds.fib_distortion_stage"
      else c_ell ell

let log10_fib_beta ~n ~eps ~t =
  let lg = Util.Tower.log2 (float_of_int (Stdlib.max 4 n)) in
  let expo = Util.Fib.log_phi lg +. float_of_int t in
  expo *. Float.log10 (expo /. eps)

let log10_ez_beta ~n ~eps ~t =
  let lg = Util.Tower.log2 (float_of_int (Stdlib.max 4 n)) in
  let lglg = Util.Tower.log2 (Stdlib.max 2. lg) in
  let base = float_of_int (t * t) *. lg *. lglg /. eps in
  float_of_int t *. lglg *. Float.log10 base

let fib_beta ~n ~eps ~t = 10. ** log10_fib_beta ~n ~eps ~t
let ez_beta ~n ~eps ~t = 10. ** log10_ez_beta ~n ~eps ~t

let lb_additive_rounds ~n ~delta ~beta =
  let nf = float_of_int n in
  sqrt ((nf ** (1. -. delta)) /. (4. *. beta)) -. 6.

let lb_eps_beta ~n ~delta ~zeta ~tau =
  let nf = float_of_int n in
  (zeta *. zeta *. (nf ** (1. -. delta)) /. (4. *. float_of_int ((tau + 6) * (tau + 6))))
  -. 2.

let lb_sublinear_rounds ~n ~nu ~xi =
  let nf = float_of_int n in
  nf ** (nu *. (1. -. xi) /. (1. +. nu))
