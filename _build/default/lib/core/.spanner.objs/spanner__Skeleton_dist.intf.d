lib/core/skeleton_dist.mli: Distnet Graphlib Plan Sampling
