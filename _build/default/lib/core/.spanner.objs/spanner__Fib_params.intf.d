lib/core/fib_params.mli: Format Util
