lib/core/fibonacci.mli: Fib_params Graphlib
