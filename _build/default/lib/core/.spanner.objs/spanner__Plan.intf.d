lib/core/plan.mli: Format
