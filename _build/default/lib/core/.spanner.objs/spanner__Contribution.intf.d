lib/core/contribution.mli:
