lib/core/fibonacci.ml: Array Fib_params Graphlib List Stdlib Util
