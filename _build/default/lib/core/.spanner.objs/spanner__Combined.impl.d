lib/core/combined.ml: Fib_params Fibonacci Float Graphlib Skeleton Stdlib Util
