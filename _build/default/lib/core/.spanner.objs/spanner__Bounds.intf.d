lib/core/bounds.mli:
