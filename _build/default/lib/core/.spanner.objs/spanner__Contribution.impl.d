lib/core/contribution.ml: Array Stdlib Util
