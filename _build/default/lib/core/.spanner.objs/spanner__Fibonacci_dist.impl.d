lib/core/fibonacci_dist.ml: Array Distnet Fib_params Float Graphlib Hashtbl List Option Queue Stdlib Util
