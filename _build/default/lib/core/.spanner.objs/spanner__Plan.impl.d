lib/core/plan.ml: Array Float Format List Seq Stdlib Util
