lib/core/sampling.mli: Plan Util
