lib/core/combined.mli: Fib_params Graphlib
