lib/core/fibonacci_dist.mli: Distnet Fib_params Graphlib
