lib/core/bounds.ml: Float Stdlib Util
