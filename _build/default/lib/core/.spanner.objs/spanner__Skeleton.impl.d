lib/core/skeleton.ml: Array Graphlib Hashtbl List Plan Sampling Stdlib Util
