lib/core/sampling.ml: Array Plan Util
