lib/core/skeleton_dist.ml: Array Distnet Graphlib Hashtbl List Plan Queue Sampling Stdlib Util
