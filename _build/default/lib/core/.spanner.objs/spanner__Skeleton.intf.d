lib/core/skeleton.mli: Graphlib Plan Sampling
