lib/core/fib_params.ml: Array Float Format Stdlib Util
