(** The algorithm's entire supply of randomness, drawn up front.

    The paper (proof of Theorem 2): "Before the first round of
    communication every vertex performs the sampling steps in all
    calls to Expand … c selects the round and iteration when its
    cluster is first left unsampled."

    A vertex can only ever be a cluster center over one contiguous
    range of calls (once its cluster goes unsampled it is absorbed
    into someone else's cluster or dies, and cluster centers persist
    through contraction), so the whole random tape collapses to one
    integer per vertex: the first call whose Bernoulli draw fails.
    Sharing this tape between the sequential and distributed
    implementations makes them produce {e identical} spanners, which
    the test suite checks. *)

type t

val draw : Util.Prng.t -> n:int -> Plan.t -> t
(** For each vertex, walk the plan's calls and record the index of the
    first call [k] whose Bernoulli([p_k]) trial fails.  The final call
    has [p = 0], so the index always exists. *)

val first_unsampled : t -> int -> int
(** The recorded call index for a vertex. *)

val sampled : t -> center:int -> call:int -> bool
(** Whether the cluster centered at [center] is sampled at call
    [call]: [first_unsampled center > call]. *)

val n : t -> int
