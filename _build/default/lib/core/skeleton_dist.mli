(** Distributed implementation of the Section 2 skeleton algorithm on
    the {!Distnet.Sim} engine (the construction behind Theorem 2).

    Every original vertex is a network node.  The schedule ({!Plan})
    depends only on [n, D, eps], so all nodes know it; the random tape
    ({!Sampling}) is each node's private coin flips, drawn before the
    first round as the paper prescribes.  Each [Expand] call runs as a
    sequence of message phases:

    + {b exchange} — every live node tells each live neighbor its
      cluster center and that center's first-unsampled call index
      (2 words);
    + {b convergecast} — inside each contracted vertex whose cluster
      went unsampled, candidate crossing edges to sampled clusters
      flow up the [p1] tree, min edge id winning (3 words);
    + {b decision wave} — the center broadcasts the winning edge down
      marked on-path/off-path, nodes update their [p2] pointers exactly
      as in the paper's Fig. 4 and re-register with their new parent;
    + {b dying} — a contracted vertex with no sampled neighbor streams
      its deduplicated (cluster, edge) list to the center in batches of
      at most the word budget, the center either aborts (list longer
      than [4 s_i ln n]: keep every incident crossing edge) or
      broadcasts the chosen min edge per cluster back down;
    + {b death notices} — one final word per boundary edge.

    Between rounds each node locally promotes [p2] to [p1]
    (contraction costs no communication).

    Given the same {!Sampling} tape, the produced spanner is {e edge
    for edge identical} to {!Skeleton.build_with} — the test suite
    relies on this.  Phases are driven to quiescence rather than by the
    paper's analytic [2 r_i + 1] schedules (see DESIGN.md); dying
    clusters also hold the global schedule rather than overlapping
    subsequent calls, so measured rounds upper-bound the paper's. *)

type result = {
  spanner : Graphlib.Edge_set.t;
  plan : Plan.t;
  aborts : int;
  stats : Distnet.Sim.stats;
}

val build :
  ?d:int -> ?eps:float -> seed:int -> Graphlib.Graph.t -> result

val build_with :
  plan:Plan.t -> sampling:Sampling.t -> Graphlib.Graph.t -> result
