(** Fibonacci spanners (Section 4, sequential executable model).

    Levels [V = V_0 ⊇ V_1 ⊇ … ⊇ V_o ⊇ V_{o+1} = ∅] are sampled with
    the probabilities of {!Fib_params}; the spanner is

    - for every [i] in [1..o] and every vertex [v] with
      [delta(v, V_i) <= ell^(i-1)], the shortest path [P(v, p_i v)]
      to its nearest [V_i]-vertex (ties to the minimum identifier) —
      a forest per level;
    - for every [i] in [0..o] and every [v] in [V_{i-1}]
      (with [V_{-1} = V]), the shortest paths [P(v, u)] to every [u]
      in the ball [B_{i+1,ell}(v) = { u in V_i | delta(v,u) <= ell^i
      and delta(v,u) < delta(v, V_{i+1}) }]. *)

type level_stat = {
  members : int;  (** |V_i| *)
  ball_paths : int;  (** shortest paths contributed by level-i balls *)
  max_ball : int;  (** largest |B_{i+1,ell}(v)| over sources v *)
}

type result = {
  spanner : Graphlib.Edge_set.t;
  params : Fib_params.t;
  levels : int array;  (** per vertex: max i with v in V_i *)
  per_level : level_stat array;  (** index i in [0..o] *)
}

val build :
  ?o:int ->
  ?eps:float ->
  ?ell:int ->
  seed:int ->
  Graphlib.Graph.t ->
  result

val build_with :
  params:Fib_params.t -> levels:int array -> Graphlib.Graph.t -> result
(** Deterministic entry point under an explicit level assignment. *)
