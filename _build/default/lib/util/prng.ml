type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x5eed; seed lxor 0x9e3779b9 |]

let split t =
  let a = Random.State.bits t and b = Random.State.bits t in
  Random.State.make [| a; b; a lxor (b lsl 7) |]

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  Random.State.int t bound

let float t bound = Random.State.float t bound
let bool t = Random.State.bool t

let bernoulli t p =
  if p <= 0. then false
  else if p >= 1. then true
  else Random.State.float t 1. < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t ~k ~n =
  if n < 0 then invalid_arg "Prng.sample_without_replacement: n < 0";
  let k = max 0 (min k n) in
  if k = 0 then [||]
  else if 3 * k >= n then begin
    (* Dense case: shuffle a full index array and keep a prefix. *)
    let all = Array.init n (fun i -> i) in
    shuffle t all;
    let chosen = Array.sub all 0 k in
    Array.sort compare chosen;
    chosen
  end
  else begin
    (* Sparse case: rejection sampling into a hash set. *)
    let seen = Hashtbl.create (2 * k) in
    while Hashtbl.length seen < k do
      let x = Random.State.int t n in
      if not (Hashtbl.mem seen x) then Hashtbl.add seen x ()
    done;
    let chosen = Array.make k 0 in
    let i = ref 0 in
    Hashtbl.iter
      (fun x () ->
        chosen.(!i) <- x;
        incr i)
      seen;
    Array.sort compare chosen;
    chosen
  end

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(Random.State.int t (Array.length a))
