let phi = (1. +. sqrt 5.) /. 2.

let table =
  let t = Array.make 91 0 in
  t.(1) <- 1;
  for k = 2 to 90 do
    t.(k) <- t.(k - 1) + t.(k - 2)
  done;
  t

let f k =
  if k < 0 || k > 90 then invalid_arg "Fib.f: index out of [0, 90]";
  table.(k)

let binet k =
  let k = float_of_int k in
  ((phi ** k) -. ((1. -. phi) ** k)) /. sqrt 5.

let log_phi x = log x /. log phi

let order_upper_bound n =
  if n < 2 then 1
  else
    let lg = log (float_of_int n) /. log 2. in
    Stdlib.max 1 (int_of_float (Float.floor (log_phi lg)))

let index_of_first_geq x =
  let rec loop k = if table.(k) >= x then k else loop (k + 1) in
  if x <= 0 then 0 else loop 0
