(** Fixed-capacity bit set over [0 .. n-1]. *)

type t

val create : int -> t
(** All bits clear. *)

val capacity : t -> int
val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool
val cardinal : t -> int
val reset : t -> unit
(** Clear every bit. *)

val iter : t -> (int -> unit) -> unit
(** Visit set bits in increasing order. *)

val to_list : t -> int list
