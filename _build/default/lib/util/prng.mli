(** Seeded pseudo-random number generation.

    Every randomized component of the library threads an explicit
    [Prng.t] so that experiments are reproducible from a single integer
    seed.  The implementation wraps [Random.State]; the extra helpers
    are the primitives that spanner algorithms actually need
    (Bernoulli trials, reservoir-free subset sampling, shuffles). *)

type t

val create : seed:int -> t
(** [create ~seed] is a fresh generator determined by [seed]. *)

val split : t -> t
(** [split t] is a new generator derived from (and advancing) [t].
    Used to hand independent streams to sub-components. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [max 0 (min 1 p)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> k:int -> n:int -> int array
(** [sample_without_replacement t ~k ~n] is a sorted array of [min k n]
    distinct integers drawn uniformly from [\[0, n)]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  @raise Invalid_argument on [||]. *)
