(** Fibonacci numbers and golden-ratio facts used throughout Section 4
    of the paper ("Fibonacci spanners").

    The paper's conventions: [f 0 = 0], [f 1 = 1],
    [f k = f (k-1) + f (k-2)]; [phi = (1 + sqrt 5) / 2]; and the one
    inequality the analysis relies on, [phi *. f k +. 1. > f (k+1)]. *)

val phi : float
(** The golden ratio [(1 + sqrt 5) / 2]. *)

val f : int -> int
(** [f k] is the k-th Fibonacci number.  Valid for [0 <= k <= 90]
    (beyond which the value overflows 63-bit integers).
    @raise Invalid_argument outside that range. *)

val binet : int -> float
(** Closed form [ (phi^k - (1-phi)^k) / sqrt 5 ]. *)

val log_phi : float -> float
(** [log_phi x] is [log x /. log phi]. *)

val order_upper_bound : int -> int
(** [order_upper_bound n] is [floor (log_phi (log2 n))], the maximum
    spanner order the paper allows ([o <= log_phi log n]); at least 1. *)

val index_of_first_geq : int -> int
(** [index_of_first_geq x] is the least [k] with [f k >= x]. *)
