(** Disjoint-set forest with union by rank and path compression.
    Used for contraction bookkeeping and connectivity checks. *)

type t

val create : int -> t
(** [create n] has elements [0 .. n-1], each its own set. *)

val find : t -> int -> int
(** Canonical representative of the element's set. *)

val union : t -> int -> int -> bool
(** [union t a b] merges the two sets; returns [false] when they were
    already the same set. *)

val same : t -> int -> int -> bool
val count : t -> int
(** Number of disjoint sets remaining. *)

val size_of : t -> int -> int
(** Size of the set containing the element. *)
