lib/util/fheap.mli:
