lib/util/stats.mli:
