lib/util/fib.ml: Array Float Stdlib
