lib/util/prng.ml: Array Hashtbl Random
