lib/util/tower.ml: Float
