lib/util/bitset.mli:
