lib/util/prng.mli:
