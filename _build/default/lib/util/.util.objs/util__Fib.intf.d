lib/util/fib.mli:
