lib/util/tower.mli:
