lib/util/heap.mli:
