(** Minimal binary min-heap keyed by integers.  Sufficient for the
    Dijkstra-style traversals in the graph substrate. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> key:int -> 'a -> unit

val pop_min : 'a t -> (int * 'a) option
(** Remove and return the entry with the smallest key. *)

val peek_min : 'a t -> (int * 'a) option
