(** The tower sequence [(s_i)] of the paper's Section 2 and assorted
    iterated-logarithm helpers.

    The sequence is [s_0 = s_1 = D] and [s_i = s_{i-1} ^ s_{i-1}] for
    [i >= 2] (paper, Section 2, before Lemma 1).  It reaches any
    feasible [n] within [log* n] terms (Lemma 1(1)), so all values are
    computed with saturation at {!cap}. *)

val cap : int
(** Saturation value for tower entries (large, but safely below
    [max_int]). *)

val pow_sat : int -> int -> int
(** [pow_sat b e] is [b^e] saturating at {!cap}.  Requires [b >= 0],
    [e >= 0]. *)

val s : d:int -> int -> int
(** [s ~d i] is [s_i] for parameter [D = d] (requires [d >= 2],
    [i >= 0]), saturating at {!cap}. *)

val rounds_for : d:int -> n:int -> int
(** [rounds_for ~d ~n] is the least [l] such that
    [s_1^2 * ... * s_{l-1}^2 * s_l >= n] — the number of rounds [L] the
    idealized algorithm needs (the paper assumes
    [n = s_1^2 ... s_{L-1}^2 s_L]). *)

val log2 : float -> float
val log_star : int -> int
(** Iterated base-2 logarithm: least [k] with [log2^(k) n <= 1]. *)

val ln_choose_bound : int -> float
(** [ln_choose_bound t] is the paper's Lemma 6 bound constant
    [ln (t+1) -. zeta] with [zeta = ln 2 -. 1/e]; exposed so tests and
    experiment tables share one definition. *)

val zeta : float
(** [ln 2 -. 1. /. e ≈ 0.325], the constant of Lemma 6. *)
