(** Binary min-heap with float keys (for Dijkstra on weighted
    graphs). *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> key:float -> 'a -> unit
val pop_min : 'a t -> (float * 'a) option
val peek_min : 'a t -> (float * 'a) option
