let cap = 1 lsl 60

let mul_sat a b = if a = 0 || b = 0 then 0 else if a > cap / b then cap else a * b

let pow_sat b e =
  if b < 0 || e < 0 then invalid_arg "Tower.pow_sat: negative argument";
  (* Square-and-multiply with saturation at [cap]. *)
  let rec go acc base e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul_sat acc base else acc in
      if e lsr 1 = 0 then acc else go acc (mul_sat base base) (e lsr 1)
  in
  go 1 b e

let s ~d i =
  if d < 2 then invalid_arg "Tower.s: d must be >= 2";
  if i < 0 then invalid_arg "Tower.s: negative index";
  if i <= 1 then d
  else
    let rec loop prev j = if j > i then prev else loop (pow_sat prev prev) (j + 1) in
    loop d 2

let rounds_for ~d ~n =
  if n <= 1 then 1
  else
    let rec loop l acc =
      (* acc = s_1^2 * ... * s_{l-1}^2, saturating *)
      let sl = s ~d l in
      if mul_sat acc sl >= n then l else loop (l + 1) (mul_sat acc (mul_sat sl sl))
    in
    loop 1 1

let log2 x = log x /. log 2.

let log_star n =
  let rec loop x k = if x <= 1. then k else loop (log2 x) (k + 1) in
  if n <= 1 then 0 else loop (float_of_int n) 0

let zeta = log 2. -. (1. /. Float.exp 1.)
let ln_choose_bound t = log (float_of_int (t + 1)) -. zeta
