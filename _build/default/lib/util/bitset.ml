type t = { words : int array; n : int; mutable card : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Array.make ((n + 62) / 63) 0; n; card = 0 }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  t.words.(i / 63) land (1 lsl (i mod 63)) <> 0

let set t i =
  check t i;
  if not (mem t i) then begin
    t.words.(i / 63) <- t.words.(i / 63) lor (1 lsl (i mod 63));
    t.card <- t.card + 1
  end

let clear t i =
  check t i;
  if mem t i then begin
    t.words.(i / 63) <- t.words.(i / 63) land lnot (1 lsl (i mod 63));
    t.card <- t.card - 1
  end

let cardinal t = t.card

let reset t =
  Array.fill t.words 0 (Array.length t.words) 0;
  t.card <- 0

let iter t f =
  for i = 0 to t.n - 1 do
    if t.words.(i / 63) land (1 lsl (i mod 63)) <> 0 then f i
  done

let to_list t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc
