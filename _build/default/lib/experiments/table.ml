type t = {
  id : string;
  title : string;
  reproduces : string;
  columns : string list;
  rows : string list list;
  notes : string list;
}

let cell_f x = Printf.sprintf "%.3g" x
let cell_i = string_of_int

let print ppf t =
  let all = t.columns :: t.rows in
  let ncols = List.fold_left (fun acc r -> Stdlib.max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < ncols && String.length cell > widths.(i) then
            widths.(i) <- String.length cell)
        row)
    all;
  let render row =
    String.concat "  "
      (List.mapi
         (fun i cell -> Printf.sprintf "%-*s" widths.(i) cell)
         row)
  in
  Format.fprintf ppf "@.== %s: %s@." t.id t.title;
  Format.fprintf ppf "   reproduces: %s@." t.reproduces;
  Format.fprintf ppf "%s@." (render t.columns);
  Format.fprintf ppf "%s@."
    (String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  List.iter (fun r -> Format.fprintf ppf "%s@." (render r)) t.rows;
  List.iter (fun n -> Format.fprintf ppf "   note: %s@." n) t.notes
