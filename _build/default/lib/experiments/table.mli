(** Plain-text experiment tables (shared by [bench/] and [bin/]). *)

type t = {
  id : string;  (** e.g. "E1" *)
  title : string;
  reproduces : string;  (** the paper artifact this regenerates *)
  columns : string list;
  rows : string list list;
  notes : string list;
}

val print : Format.formatter -> t -> unit
(** Aligned ASCII rendering with header, separator and notes. *)

val cell_f : float -> string
(** Compact float cell: "%.3g". *)

val cell_i : int -> string
