lib/experiments/run.ml: Array Baseline Distnet Float Graphlib List Lowerbound Oracle Printf Spanner Stdlib String Table Util
