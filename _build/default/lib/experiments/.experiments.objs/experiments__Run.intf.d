lib/experiments/run.mli: Table
