(* Benchmark + experiment-table harness.

   `dune exec bench/main.exe` prints every experiment table (E1..E10,
   quick sizes) and then runs one Bechamel timing benchmark per
   experiment (the core computation each table exercises).

   Flags:  --full          full-size tables (slow)
           --tables-only   skip the Bechamel pass
           --bench-only    skip the tables
           --json          machine-readable timings only (implies --bench-only)
           --seed N        change the experiment seed (default 1)
           --only Ei       run a single table
           --baseline F    compare timings against a saved --json file
                           (or a repo BENCH_*.json); exit 1 on regression
           --tolerance X   relative slowdown allowed before a bench counts
                           as regressed (default 0.25 = 25%)
           --profile       attach the Obs.Prof sink per bench and print each
                           bench's top allocation sites

   Subcommand:  bench history [--current FILE] [--tolerance X]
           read every checked-in BENCH_*.json (plus FILE, typically a fresh
           --json capture) and print the per-bench perf trajectory. *)

module Graph = Graphlib.Graph
module Gen = Graphlib.Gen

let seed = ref 1
let quick = ref true
let tables = ref true
let benches = ref true
let json = ref false
let only = ref None
let baseline = ref None
let tolerance = ref 0.25
let profile = ref false

let parse_args args =
  let rec go = function
    | [] -> ()
    | "--full" :: rest ->
        quick := false;
        go rest
    | "--tables-only" :: rest ->
        benches := false;
        go rest
    | "--bench-only" :: rest ->
        tables := false;
        go rest
    | "--json" :: rest ->
        json := true;
        tables := false;
        go rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        go rest
    | "--only" :: id :: rest ->
        only := Some id;
        go rest
    | "--baseline" :: file :: rest ->
        baseline := Some file;
        go rest
    | "--tolerance" :: v :: rest ->
        tolerance := float_of_string v;
        go rest
    | "--profile" :: rest ->
        profile := true;
        go rest
    | arg :: _ ->
        Printf.eprintf "unknown argument %s\n" arg;
        exit 2
  in
  go args

(* Bench bodies may print (experiment drivers share code with the
   tables); under --json their stray stdout would corrupt the JSON
   artifact, so the whole measuring pass runs with stdout pointed at
   /dev/null. *)
let silence_stdout f =
  flush stdout;
  Format.pp_print_flush Format.std_formatter ();
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stdout;
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Format.pp_print_flush Format.std_formatter ();
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f

(* ------------------------------------------------------------------ *)
(* Bechamel: one Test.make per experiment table. *)

let bench_tests () =
  let open Bechamel in
  let rng = Util.Prng.create ~seed:!seed in
  let g_mid = Gen.connected_gnp rng ~n:600 ~p:0.02 in
  let g_small = Gen.connected_gnp rng ~n:250 ~p:0.05 in
  let torus = Gen.king_torus ~width:20 ~height:20 in
  let gadget = Graphlib.Gadget.create ~tau:2 ~sigma:5 ~kappa:6 in
  (* Each entry keeps the raw thunk next to the Bechamel test: the GC
     pass and --profile run the body directly, outside the timer. *)
  let t name f = (name, f, Test.make ~name (Staged.stage f)) in
  (* The serving bench's snapshot and workload are built once, outside
     the timed region: the bench times the query hot path alone. *)
  let serve_snap =
    let r = Spanner.Skeleton_dist.build ~seed:!seed g_small in
    Serve.Snapshot.build ~k:2 ~seed:!seed ~routing:true g_small
      r.Spanner.Skeleton_dist.spanner
  in
  let serve_w =
    Serve.Workload.generate ~seed:(!seed + 41) ~n:(Graph.n g_small)
      { Serve.Workload.queries = 10_000; zipf = Some 1.2; route_frac = 0.25 }
  in
  (* The sweep bench times one sample end to end (compile is outside:
     it is cheap and deterministic, the run is the cost). *)
  let sweep_plan =
    let spec =
      match Scenario.Spec.builtin "mixed" with
      | Some s -> s
      | None -> assert false
    in
    Scenario.Compile.compile spec ~sample:!seed
  in
  [
    t "e1.skeleton_dist" (fun () ->
        ignore (Spanner.Skeleton_dist.build ~seed:!seed g_small));
    t "e2.skeleton_seq" (fun () -> ignore (Spanner.Skeleton.build ~seed:!seed g_mid));
    t "e3.plan+sampling" (fun () ->
        let plan = Spanner.Plan.make ~n:(Graph.n g_mid) () in
        ignore
          (Spanner.Sampling.draw (Util.Prng.create ~seed:!seed) ~n:(Graph.n g_mid) plan));
    t "e4.fibonacci_seq" (fun () ->
        ignore (Spanner.Fibonacci.build ~o:3 ~ell:2 ~seed:!seed torus));
    t "e5.fibonacci_seq_gnp" (fun () ->
        ignore (Spanner.Fibonacci.build ~o:4 ~ell:2 ~seed:!seed g_mid));
    t "e6.adversary" (fun () ->
        ignore
          (Lowerbound.Adversary.run_once (Util.Prng.create ~seed:!seed) gadget ~keep:0.5));
    t "e7.gadget_build" (fun () -> ignore (Graphlib.Gadget.create ~tau:3 ~sigma:4 ~kappa:5));
    t "e8.fibonacci_dist" (fun () ->
        ignore (Spanner.Fibonacci_dist.build ~o:2 ~ell:2 ~t:2 ~seed:!seed g_small));
    t "e9.contribution_dp" (fun () -> ignore (Spanner.Contribution.xtp ~p:0.1 ~t:200));
    t "e10.flood" (fun () ->
        ignore (Distnet.Protocols.flood g_mid ~root:0 ~payload_words:4));
    t "e21.reliable_bfs_drop20" (fun () ->
        let faults =
          Distnet.Fault.make ~seed:!seed
            { Distnet.Fault.default_spec with Distnet.Fault.drop = 0.2 }
        in
        ignore (Distnet.Protocols.reliable_bfs ~faults g_small ~root:0));
    t "e22.skeleton_crash_recovery" (fun () ->
        let faults =
          Distnet.Fault.make ~seed:!seed
            {
              Distnet.Fault.default_spec with
              Distnet.Fault.drop = 0.2;
              crashes = [ (3, 40); (11, 120); (17, 300) ];
            }
        in
        let r = Spanner.Skeleton_dist.build ~faults ~seed:!seed g_small in
        ignore
          (Spanner.Certify.run ~plan:r.Spanner.Skeleton_dist.plan
             ~witness:r.Spanner.Skeleton_dist.witness g_small
             r.Spanner.Skeleton_dist.spanner));
    t "e23.skeleton_churn_repair" (fun () ->
        let u, v =
          (* any edge of the graph works; edge 0 is stable for a fixed seed *)
          let e = Graph.edge g_small 0 in
          (e.Graph.u, e.Graph.v)
        in
        let faults =
          Distnet.Fault.make ~seed:!seed ~graph:g_small
            {
              Distnet.Fault.default_spec with
              Distnet.Fault.churn =
                [ Distnet.Fault.Edge_down { round = 30; u; v } ];
            }
        in
        ignore (Spanner.Skeleton_dist.build ~faults ~seed:!seed g_small));
    t "e11.combined" (fun () ->
        ignore (Spanner.Combined.build ~ell:2 ~seed:!seed g_small));
    t "e12.skeleton_traced" (fun () ->
        ignore (Spanner.Skeleton.build ~trace:true ~seed:!seed g_small));
    t "e13.oracle_build" (fun () ->
        ignore (Oracle.Distance_oracle.build ~k:3 ~seed:!seed g_small));
    t "e14.fib_on_torus" (fun () ->
        ignore (Spanner.Fibonacci.build ~o:4 ~ell:2 ~seed:!seed torus));
    t "baseline.baswana_sen" (fun () ->
        ignore (Baseline.Baswana_sen.build ~k:3 ~seed:!seed g_mid));
    t "baseline.baswana_sen_weighted" (fun () ->
        let wg = Graphlib.Weighted.random (Util.Prng.create ~seed:!seed) g_mid ~lo:1. ~hi:8. in
        ignore (Baseline.Baswana_sen_weighted.build ~k:3 ~seed:!seed wg));
    t "baseline.greedy" (fun () -> ignore (Baseline.Greedy.build ~k:3 g_small));
    t "e25.serve_queries" (fun () ->
        ignore (Serve.Server.run (Serve.Server.create serve_snap) serve_w));
    t "e26.scenario_sweep" (fun () ->
        ignore (Scenario.Sweep.run_plan sweep_plan));
  ]

(* ------------------------------------------------------------------ *)
(* Baseline comparison (--baseline FILE).

   A baseline is any earlier `--json` output, or one of the repo's
   saved BENCH_*.json snapshots (a bare array of the same objects).
   The parser scans the whole file for "name"/"ns_per_run" pairs, so
   both shapes — and whitespace/pretty-printing differences — are
   accepted without a JSON dependency. *)

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_baseline file =
  let s = read_file file in
  let len = String.length s in
  let rec skip_ws i =
    if i < len && (s.[i] = ' ' || s.[i] = '\t' || s.[i] = '\n' || s.[i] = '\r')
    then skip_ws (i + 1)
    else i
  in
  let find from needle =
    let nl = String.length needle in
    let rec at i =
      if i + nl > len then None
      else if String.sub s i nl = needle then Some (i + nl)
      else at (i + 1)
    in
    at from
  in
  let rec go acc i =
    match find i {|"name"|} with
    | None -> List.rev acc
    | Some j -> (
        let j = skip_ws j in
        if j >= len || s.[j] <> ':' then go acc j
        else
          let j = skip_ws (j + 1) in
          if j >= len || s.[j] <> '"' then go acc j
          else
            match String.index_from_opt s (j + 1) '"' with
            | None -> List.rev acc
            | Some q -> (
                let name = String.sub s (j + 1) (q - j - 1) in
                match find q {|"ns_per_run"|} with
                | None -> List.rev acc
                | Some k ->
                    let k = skip_ws k in
                    let k = if k < len && s.[k] = ':' then skip_ws (k + 1) else k in
                    let stop = ref k in
                    while
                      !stop < len
                      &&
                      match s.[!stop] with
                      | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
                      | _ -> false
                    do
                      incr stop
                    done;
                    (* a "null" estimate parses as no digits -> None *)
                    let v =
                      if !stop > k then
                        float_of_string_opt (String.sub s k (!stop - k))
                      else None
                    in
                    go ((name, v) :: acc) !stop))
  in
  go [] 0

let compare_baseline ~file timings =
  (* Under --json the comparison goes to stderr so stdout stays valid
     JSON; the exit code carries the verdict either way. *)
  let ppf = if !json then Format.err_formatter else Format.std_formatter in
  let base = parse_baseline file in
  if base = [] then begin
    Printf.eprintf "bench: no timings found in baseline %s\n" file;
    exit 2
  end;
  Format.fprintf ppf "@.== baseline comparison vs %s (tolerance +%.0f%%)@." file
    (100. *. !tolerance);
  Format.fprintf ppf "  %-30s %12s %12s %9s@." "bench" "baseline" "current"
    "delta";
  let regressed = ref 0 and compared = ref 0 in
  List.iter
    (fun (name, cur) ->
      match (List.assoc_opt name base, cur) with
      | (None | Some None), _ -> ()
      | Some (Some b), None ->
          Format.fprintf ppf "  %-30s %12.0f %12s %9s@." name b "-" "-"
      | Some (Some b), Some c ->
          incr compared;
          let delta = (c -. b) /. b in
          let flag =
            if delta > !tolerance then begin
              incr regressed;
              "  REGRESSED"
            end
            else ""
          in
          Format.fprintf ppf "  %-30s %12.0f %12.0f %+8.1f%%%s@." name b c
            (100. *. delta) flag)
    timings;
  if !compared = 0 then begin
    Format.fprintf ppf "  no bench in this run has a baseline entry@.";
    exit 2
  end;
  if !regressed > 0 then begin
    Format.fprintf ppf "  %d of %d bench(es) regressed beyond +%.0f%%@."
      !regressed !compared
      (100. *. !tolerance);
    exit 1
  end
  else Format.fprintf ppf "  no regressions (%d bench(es) compared)@." !compared

(* One extra, untimed execution of the bench body measuring GC cost:
   minor/major words allocated and major collections.  Word counts are
   exact (the runtime counts every allocation), so unlike ns_per_run
   these columns are stable run to run on one build. *)
let gc_measure f =
  let mw0 = Gc.minor_words () in
  let s0 = Gc.quick_stat () in
  f ();
  let s1 = Gc.quick_stat () in
  let mw1 = Gc.minor_words () in
  ( int_of_float (mw1 -. mw0),
    int_of_float (s1.Gc.major_words -. s0.Gc.major_words),
    s1.Gc.major_collections - s0.Gc.major_collections )

let run_benches () =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
  if not !json then
    Format.printf "@.== Bechamel timings (monotonic clock, one bench per experiment)@.";
  (* --only Ei narrows the bench pass to that experiment's benches
     (names are "e<i>.<what>"). *)
  let measure () =
    let selected =
      let all = bench_tests () in
      match !only with
      | None -> all
      | Some id ->
          let prefix = String.lowercase_ascii id ^ "." in
          let plen = String.length prefix in
          List.filter
            (fun (name, _, _) ->
              String.length name >= plen && String.sub name 0 plen = prefix)
            all
    in
    List.concat_map
      (fun (_, f, test) ->
        let results =
          Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"" [ test ])
        in
        let ols =
          Analyze.all
            (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
            instance results
        in
        let gc = gc_measure f in

        let prof_rows =
          if not !profile then []
          else begin
            let sink = Obs.Prof.create () in
            Obs.Prof.set_current sink;
            f ();
            Obs.Prof.set_current Obs.Prof.disabled;
            Obs.Prof.rows sink
          end
        in
        Hashtbl.fold
          (fun name result acc ->
            (* Bechamel prefixes the (empty) group name: "/e1.foo". *)
            let name =
              if String.length name > 0 && name.[0] = '/' then
                String.sub name 1 (String.length name - 1)
              else name
            in
            match Analyze.OLS.estimates result with
            | Some [ est ] -> (name, Some est, gc, prof_rows) :: acc
            | _ -> (name, None, gc, prof_rows) :: acc)
          ols [])
      selected
  in
  (* Under --json the measuring pass is silenced: bench bodies share
     code with the experiment drivers and may print, and the artifact
     must stay parseable JSON. *)
  let timings = if !json then silence_stdout measure else measure () in
  (if !json then begin
     (* Machine-readable per-experiment timings: a header identifying
        the run (seed, quick/full mode) plus one object per bench,
        suitable for the BENCH_*.json perf trajectory. *)
     Format.printf {|{"seed": %d, "workload_seed": %d, "mode": %S, "timings": [@.|}
       !seed (!seed + 41)
       (if !quick then "quick" else "full");
     List.iteri
       (fun i (name, est, (minor, major, majors), _) ->
         let sep = if i = List.length timings - 1 then "" else "," in
         let ns =
           match est with
           | Some est -> Printf.sprintf "%.1f" est
           | None -> "null"
         in
         Format.printf
           {|  {"name": %S, "ns_per_run": %s, "minor_words": %d, "major_words": %d, "majors": %d}%s@.|}
           name ns minor major majors sep)
       timings;
     Format.printf "]}@."
   end
   else begin
     List.iter
       (fun (name, est, (minor, major, majors), _) ->
         match est with
         | Some est ->
             Format.printf "%-28s %12.0f ns/run %12d minor %10d major %4d majors@."
               name est minor major majors
         | None ->
             Format.printf "%-28s (no estimate) %12d minor %10d major %4d majors@."
               name minor major majors)
       timings;
     if !profile then begin
       Format.printf "@.== per-bench profiles (top allocation sites, self minor+major words)@.";
       List.iter
         (fun (name, _, _, rows) ->
           let sites =
             List.filter
               (fun (r : Obs.Prof.row) -> r.Obs.Prof.kind = Obs.Prof.Region)
               rows
             |> List.sort (fun (a : Obs.Prof.row) (b : Obs.Prof.row) ->
                    compare
                      (b.Obs.Prof.self_minor_words + b.Obs.Prof.self_major_words)
                      (a.Obs.Prof.self_minor_words + a.Obs.Prof.self_major_words))
           in
           match sites with
           | [] -> Format.printf "%-28s (no regions hit)@." name
           | _ ->
               Format.printf "%-28s" name;
               List.iteri
                 (fun i (r : Obs.Prof.row) ->
                   if i < 3 then
                     Format.printf " %s=%d" r.Obs.Prof.name
                       (r.Obs.Prof.self_minor_words + r.Obs.Prof.self_major_words))
                 sites;
               Format.printf "@.")
         timings
     end
   end);
  List.map (fun (name, est, _, _) -> (name, est)) timings

(* ------------------------------------------------------------------ *)
(* bench history: the per-bench perf trajectory over every checked-in
   BENCH_*.json snapshot, plus (optionally) a fresh --json capture.
   Columns appear in filename order — the snapshots are named after the
   experiment generation that recorded them (e26, e27, ...), so
   lexicographic order is chronological order. *)

let history args =
  let current = ref None in
  let rec go = function
    | [] -> ()
    | "--current" :: file :: rest ->
        current := Some file;
        go rest
    | "--tolerance" :: v :: rest ->
        tolerance := float_of_string v;
        go rest
    | arg :: _ ->
        Printf.eprintf "bench history: unknown argument %s\n" arg;
        exit 2
  in
  go args;
  let snapshots =
    Sys.readdir "."
    |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 11
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json")
    |> List.sort compare
  in
  let label file = Filename.chop_suffix (Filename.basename file) ".json" in
  let columns =
    List.map (fun f -> (label f, parse_baseline f)) snapshots
    @
    match !current with
    | Some f -> [ ("current", parse_baseline f) ]
    | None -> []
  in
  if List.length columns < 1 then begin
    Printf.eprintf
      "bench history: no BENCH_*.json in the current directory (and no \
       --current file)\n";
    exit 2
  end;
  (* Row order: first appearance across columns, oldest column first,
     so the table is stable as benches are added over time. *)
  let names = ref [] in
  List.iter
    (fun (_, entries) ->
      List.iter
        (fun (name, _) ->
          if not (List.mem name !names) then names := name :: !names)
        entries)
    columns;
  let names = List.rev !names in
  Format.printf "== bench history (%d snapshot(s), tolerance +%.0f%%)@."
    (List.length columns)
    (100. *. !tolerance);
  Format.printf "%-30s" "bench";
  List.iter (fun (l, _) -> Format.printf " %12s" l) columns;
  Format.printf " %9s@." "delta";
  List.iter
    (fun name ->
      Format.printf "%-30s" name;
      (* Walk the columns, remembering the last two present values so
         the delta column compares the newest snapshot to the one
         before it. *)
      let prev = ref None and last = ref None in
      List.iter
        (fun (_, entries) ->
          match List.assoc_opt name entries with
          | Some (Some v) ->
              prev := !last;
              last := Some v;
              Format.printf " %12.0f" v
          | _ -> Format.printf " %12s" "-")
        columns;
      (match (!prev, !last) with
      | Some p, Some l when p > 0. ->
          let delta = (l -. p) /. p in
          Format.printf " %+8.1f%%%s" (100. *. delta)
            (if delta > !tolerance then "  REGRESSED" else "")
      | _ -> Format.printf " %9s" "-");
      Format.printf "@.")
    names

let () =
  (match Array.to_list Sys.argv with
  | _ :: "history" :: rest ->
      history rest;
      exit 0
  | _ :: rest -> parse_args rest
  | [] -> ());
  (* Validate --only up front, whatever passes run: an unknown id must
     fail loudly (exit 2), not silently bench nothing under --json. *)
  (match !only with
  | Some id when Experiments.Run.by_id id = None ->
      Printf.eprintf "unknown experiment %s (have: %s)\n" id
        (String.concat ", " Experiments.Run.ids);
      exit 2
  | _ -> ());
  if !tables then begin
    match !only with
    | Some id -> (
        match Experiments.Run.by_id id with
        | Some f ->
            Experiments.Table.print Format.std_formatter (f ~quick:!quick ~seed:!seed ())
        | None -> assert false)
    | None ->
        List.iter
          (Experiments.Table.print Format.std_formatter)
          (Experiments.Run.all ~quick:!quick ~seed:!seed ())
  end;
  if !benches then begin
    let timings = run_benches () in
    match !baseline with
    | Some file -> compare_baseline ~file timings
    | None -> ()
  end
